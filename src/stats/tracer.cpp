#include "stats/tracer.hpp"

#include <algorithm>

namespace rrtcp::stats {

std::uint64_t SeqTracer::acked_packets_at(sim::Time t) const {
  // acks_ is time-ordered and the cumulative ACK is monotone.
  std::uint64_t best = 0;
  for (const auto& a : acks_) {
    if (a.t > t) break;
    best = std::max(best, a.ack_pkts);
  }
  return best;
}

std::vector<std::pair<double, std::uint64_t>> SeqTracer::ack_series(
    sim::Time dt, sim::Time horizon) const {
  std::vector<std::pair<double, std::uint64_t>> out;
  std::uint64_t best = 0;
  auto it = acks_.begin();
  for (sim::Time t = sim::Time::zero(); t <= horizon; t += dt) {
    while (it != acks_.end() && it->t <= t) {
      best = std::max(best, it->ack_pkts);
      ++it;
    }
    out.emplace_back(t.to_seconds(), best);
  }
  return out;
}

void PhaseTracer::on_phase(sim::Time now, tcp::TcpPhase p) {
  if (!intervals_.empty() && intervals_.back().end.is_infinite())
    intervals_.back().end = now;
  intervals_.push_back({now, sim::Time::infinity(), p});
}

sim::Time PhaseTracer::first_recovery_start() const {
  for (const auto& iv : intervals_)
    if (is_recovery(iv.phase)) return iv.begin;
  return sim::Time::infinity();
}

sim::Time PhaseTracer::last_recovery_end() const {
  sim::Time end = sim::Time::infinity();
  bool any = false;
  for (const auto& iv : intervals_) {
    if (is_recovery(iv.phase)) {
      end = iv.end;
      any = true;
    }
  }
  return any ? end : sim::Time::infinity();
}

sim::Time PhaseTracer::time_in_recovery(sim::Time horizon) const {
  sim::Time total = sim::Time::zero();
  for (const auto& iv : intervals_) {
    if (!is_recovery(iv.phase)) continue;
    const sim::Time begin = std::min(iv.begin, horizon);
    const sim::Time end = std::min(iv.end.is_infinite() ? horizon : iv.end,
                                   horizon);
    if (end > begin) total += end - begin;
  }
  return total;
}

}  // namespace rrtcp::stats
