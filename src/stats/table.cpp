#include "stats/table.hpp"

#include <cstdarg>

#include "sim/assert.hpp"

namespace rrtcp::stats {

Table::Table(std::vector<std::string> headers)
    : headers_{std::move(headers)} {}

Table& Table::add_row(std::vector<std::string> cells) {
  RRTCP_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width != header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::cell(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("| ", out);
    for (std::size_t i = 0; i < row.size(); ++i)
      std::fprintf(out, "%-*s | ", static_cast<int>(widths[i]),
                   row[i].c_str());
    std::fputc('\n', out);
  };
  auto print_rule = [&] {
    std::fputc('+', out);
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void print_series(const std::string& title,
                  const std::vector<std::string>& column_names,
                  const std::vector<std::vector<double>>& columns,
                  std::FILE* out) {
  RRTCP_ASSERT(!columns.empty());
  RRTCP_ASSERT(column_names.size() == columns.size());
  std::fprintf(out, "# %s\n#", title.c_str());
  for (const auto& n : column_names) std::fprintf(out, " %12s", n.c_str());
  std::fputc('\n', out);
  const std::size_t rows = columns[0].size();
  for (const auto& c : columns) RRTCP_ASSERT(c.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::fputc(' ', out);
    for (const auto& c : columns) std::fprintf(out, " %12.5f", c[r]);
    std::fputc('\n', out);
  }
}

}  // namespace rrtcp::stats
