// Effective-throughput measurement.
//
// The paper's metric: "effective throughput, a commonly-used metric for
// end-to-end protocols" — bytes of new data cumulatively acknowledged per
// unit time. ThroughputMeter observes a sender's ACK stream and answers
// windowed queries.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "tcp/types.hpp"

namespace rrtcp::stats {

class ThroughputMeter final : public tcp::SenderObserver {
 public:
  void on_ack(sim::Time now, std::uint64_t ack, bool dup) override {
    if (!dup) samples_.push_back({now, ack});
  }

  // Highest cumulative ACK at or before `t` (0 before the first sample).
  std::uint64_t bytes_acked_at(sim::Time t) const;

  // New bytes acknowledged in (t0, t1].
  std::uint64_t bytes_acked_between(sim::Time t0, sim::Time t1) const {
    return bytes_acked_at(t1) - bytes_acked_at(t0);
  }

  // Effective throughput over (t0, t1] in bits per second.
  double throughput_bps(sim::Time t0, sim::Time t1) const;

  // Earliest time at which the cumulative ACK reached `bytes`;
  // Time::infinity() if it never did.
  sim::Time time_to_ack(std::uint64_t bytes) const;

  bool empty() const { return samples_.empty(); }

 private:
  struct Sample {
    sim::Time t;
    std::uint64_t acked;
  };
  std::vector<Sample> samples_;  // time-ordered, acked monotone
};

}  // namespace rrtcp::stats
