// Tracing observers for sender-side events.
//
// SeqTracer records the (time, packet-number) events behind the paper's
// "standard TCP sequence number plots" (Figure 6); PhaseTracer records the
// congestion-control phase timeline used by the recovery-period throughput
// measurements of Figure 5.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "tcp/types.hpp"

namespace rrtcp::stats {

class SeqTracer final : public tcp::SenderObserver {
 public:
  // mss converts byte offsets into the packet numbers the paper plots.
  explicit SeqTracer(std::uint32_t mss) : mss_{mss} {}

  struct SendEvent {
    sim::Time t;
    std::uint64_t seq_pkts;
    bool rtx;
  };
  struct AckEvent {
    sim::Time t;
    std::uint64_t ack_pkts;
    bool dup;
  };

  void on_send(sim::Time now, std::uint64_t seq, std::uint32_t,
               bool rtx) override {
    sends_.push_back({now, seq / mss_, rtx});
  }
  void on_ack(sim::Time now, std::uint64_t ack, bool dup) override {
    acks_.push_back({now, ack / mss_, dup});
  }

  const std::vector<SendEvent>& sends() const { return sends_; }
  const std::vector<AckEvent>& acks() const { return acks_; }

  // Highest cumulative ACK (packets) at or before `t` — the "delivered so
  // far" curve of a sequence plot.
  std::uint64_t acked_packets_at(sim::Time t) const;

  // Sample the cumulative-ACK curve every `dt` over [0, horizon].
  std::vector<std::pair<double, std::uint64_t>> ack_series(
      sim::Time dt, sim::Time horizon) const;

 private:
  std::uint32_t mss_;
  std::vector<SendEvent> sends_;
  std::vector<AckEvent> acks_;
};

class PhaseTracer final : public tcp::SenderObserver {
 public:
  struct Interval {
    sim::Time begin;
    sim::Time end;  // Time::infinity() while open
    tcp::TcpPhase phase;
  };

  void on_phase(sim::Time now, tcp::TcpPhase p) override;
  void on_timeout(sim::Time now) override { timeouts_.push_back(now); }

  const std::vector<Interval>& intervals() const { return intervals_; }
  const std::vector<sim::Time>& timeouts() const { return timeouts_; }

  // First time the sender entered any recovery phase (fast recovery,
  // RR retreat/probe, or RTO recovery); infinity if it never did.
  sim::Time first_recovery_start() const;
  // End of the last recovery interval; infinity if still recovering.
  sim::Time last_recovery_end() const;
  // Total time spent in recovery phases up to `horizon`.
  sim::Time time_in_recovery(sim::Time horizon) const;

 private:
  static bool is_recovery(tcp::TcpPhase p) {
    return p == tcp::TcpPhase::kFastRecovery || p == tcp::TcpPhase::kRetreat ||
           p == tcp::TcpPhase::kProbe || p == tcp::TcpPhase::kRtoRecovery;
  }
  std::vector<Interval> intervals_;
  std::vector<sim::Time> timeouts_;
};

}  // namespace rrtcp::stats
