// The full TCP throughput model of Padhye, Firoiu, Towsley & Kurose
// ("Modeling TCP Throughput: A Simple Model and its Empirical
// Validation", SIGCOMM'98) — cited by the paper's Section 4 as the model
// that "captures not only the behavior of fast retransmit but also the
// effect of retransmission timeouts", i.e. the regime where the simple
// square-root bound (model/mathis.hpp) stops fitting.
//
//               W_max bounded:  BW = min( W_max/RTT , B(p) )
//
//                                  1
//   B(p) = ---------------------------------------------------------
//          RTT*sqrt(2bp/3) + T0 * min(1, 3*sqrt(3bp/8)) * p*(1+32p^2)
//
// in packets/second, where b is the number of packets acknowledged per
// ACK (1 for the paper's per-packet-ACK receivers), T0 the base timeout.
#pragma once

#include <cstdint>

namespace rrtcp::model {

struct PadhyeParams {
  double rtt_s = 0.2;    // round-trip time
  double t0_s = 1.0;     // base retransmission timeout (coarse timer)
  int b = 1;             // packets per ACK (2 with delayed ACKs)
  double wmax_pkts = 0;  // receiver-window cap in packets; 0 = unbounded
};

// Expected steady-state throughput in packets per second for random loss
// probability p (0 < p < 1).
double padhye_throughput_pps(double p, const PadhyeParams& params);

// The window form used in the paper's Figure 7: BW*RTT/MSS in packets.
double padhye_window_packets(double p, const PadhyeParams& params);

}  // namespace rrtcp::model
