// The Mathis et al. square-root model (ACM CCR 1997), used by the paper's
// Section 4 to check that RR behaves like ideal congestion avoidance:
//
//     BW  <=  (MSS / RTT) * C / sqrt(p)
//
// where p is the random packet-loss rate and C a constant folding in the
// ACK strategy. The paper plots the *window* form, BW*RTT/MSS = C/sqrt(p),
// against the measured steady-state window of RR and SACK.
#pragma once

#include <cstdint>

namespace rrtcp::model {

// C = sqrt(3/2) ~ 1.2247: the Mathis constant for a receiver that ACKs
// every packet (the paper's receiver configuration).
inline constexpr double kMathisCPerPacketAck = 1.2247448713915890;
// C = sqrt(3/4) ~ 0.8660: delayed ACKs (every other packet).
inline constexpr double kMathisCDelayedAck = 0.8660254037844386;

// Upper-bound bandwidth in bits/second.
double bandwidth_bps(std::uint32_t mss_bytes, double rtt_seconds, double p,
                     double c = kMathisCPerPacketAck);

// Upper-bound window in packets: BW*RTT/MSS = C/sqrt(p).
double window_packets(double p, double c = kMathisCPerPacketAck);

// Inverts the model: the loss rate that would explain an observed window.
double loss_rate_for_window(double window_pkts,
                            double c = kMathisCPerPacketAck);

}  // namespace rrtcp::model
