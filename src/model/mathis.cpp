#include "model/mathis.hpp"

#include <cmath>

#include "sim/assert.hpp"

namespace rrtcp::model {

double window_packets(double p, double c) {
  RRTCP_ASSERT(p > 0.0 && p <= 1.0);
  RRTCP_ASSERT(c > 0.0);
  return c / std::sqrt(p);
}

double bandwidth_bps(std::uint32_t mss_bytes, double rtt_seconds, double p,
                     double c) {
  RRTCP_ASSERT(mss_bytes > 0);
  RRTCP_ASSERT(rtt_seconds > 0.0);
  return static_cast<double>(mss_bytes) * 8.0 / rtt_seconds *
         window_packets(p, c);
}

double loss_rate_for_window(double window_pkts, double c) {
  RRTCP_ASSERT(window_pkts > 0.0);
  const double s = c / window_pkts;
  return s * s;
}

}  // namespace rrtcp::model
