#include "model/padhye.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace rrtcp::model {

double padhye_throughput_pps(double p, const PadhyeParams& params) {
  RRTCP_ASSERT(p > 0.0 && p < 1.0);
  RRTCP_ASSERT(params.rtt_s > 0.0 && params.t0_s > 0.0 && params.b >= 1);

  const double b = params.b;
  const double fast_rtx_term = params.rtt_s * std::sqrt(2.0 * b * p / 3.0);
  const double q = std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0));
  const double timeout_term =
      params.t0_s * q * p * (1.0 + 32.0 * p * p);
  double bw = 1.0 / (fast_rtx_term + timeout_term);

  if (params.wmax_pkts > 0.0)
    bw = std::min(bw, params.wmax_pkts / params.rtt_s);
  return bw;
}

double padhye_window_packets(double p, const PadhyeParams& params) {
  return padhye_throughput_pps(p, params) * params.rtt_s;
}

}  // namespace rrtcp::model
