#include "tcp/tahoe.hpp"

namespace rrtcp::tcp {

void TahoeSender::handle_new_ack(const net::TcpHeader&, std::uint64_t) {
  open_cwnd();
  send_new_data();
}

void TahoeSender::handle_dup_ack(const net::TcpHeader&) {
  if (dupacks() != cfg_.dupack_threshold) return;
  count_fast_retransmit();
  halve_ssthresh();
  set_cwnd(cfg_.mss);
  set_phase(TcpPhase::kSlowStart);
  // Tahoe restarts transmission from the loss point; the retransmission of
  // the first lost segment is simply the first packet of the new slow
  // start (go-back-N).
  rollback_snd_nxt();
  send_new_data();
}

}  // namespace rrtcp::tcp
