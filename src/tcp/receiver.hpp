// TCP receiver (data sink).
//
// Implements the receiver behavior the paper assumes: an ACK for every
// received data packet (delayed ACKs are available but off by default, and
// are always disabled for out-of-order arrivals, per Section 2.2), duplicate
// ACKs for out-of-order segments, out-of-order reassembly, and — for the
// SACK baseline — RFC 2018 SACK block generation with the most recently
// received block listed first.
//
// Like TcpSenderBase, the receiver sees the world only through
// env::Environment; the (Simulator&, Node&) constructor is a convenience
// that owns a SimEnvironment internally.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "env/environment.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "tcp/types.hpp"

namespace rrtcp::sim {
class Simulator;
}

namespace rrtcp::tcp {

struct ReceiverConfig {
  std::uint32_t ack_bytes = 40;
  bool sack_enabled = false;
  // Delayed ACKs (RFC 1122): ACK every second in-order segment or after the
  // timeout. Off by default — the paper's receivers ACK every packet.
  bool delayed_ack = false;
  sim::Time delack_timeout = sim::Time::milliseconds(200);
  // ECN (RFC 3168): echo a received CE mark on every ACK until the sender
  // signals CWR. Needs no receiver buffering changes — this is the one
  // receiver-side feature RR-era deployments would add.
  bool ecn_enabled = false;
};

struct ReceiverStats {
  std::uint64_t data_packets = 0;       // all data arrivals
  std::uint64_t out_of_order = 0;       // arrivals above rcv_nxt
  std::uint64_t duplicates = 0;         // arrivals entirely below rcv_nxt
  std::uint64_t acks_sent = 0;
  std::uint64_t dupacks_sent = 0;
};

class TcpReceiver final : public net::Agent {
 public:
  // Primary: environment-agnostic. `env` must outlive the receiver.
  TcpReceiver(env::Environment& env, net::FlowId flow,
              ReceiverConfig cfg = {});
  // Simulator convenience: owns an env::SimEnvironment over (sim, node)
  // peered with `peer`.
  TcpReceiver(sim::Simulator& sim, net::Node& node, net::FlowId flow,
              net::NodeId peer, ReceiverConfig cfg = {});
  ~TcpReceiver() override;

  RRTCP_HOT void receive(net::Packet p) override;

  // Next byte expected in order (the cumulative ACK value).
  std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  // Bytes delivered to the "application" in order.
  std::uint64_t bytes_in_order() const { return rcv_nxt_; }

  const ReceiverStats& stats() const { return stats_; }

  // Invoke `fn` the first time rcv_nxt reaches `bytes`. One callback max.
  void notify_at(std::uint64_t bytes, std::function<void(sim::Time)> fn);

  // Unique payload bytes that have reached this receiver (in-order plus
  // buffered out-of-order) — the receiver-side goodput numerator.
  std::uint64_t unique_bytes() const {
    return rcv_nxt_ + buffered_out_of_order();
  }

  // Invoked whenever unique_bytes() grows (i.e. on every arrival carrying
  // new data). Used by the experiment harnesses to measure effective
  // throughput over sub-intervals such as the recovery period.
  void set_progress_callback(
      std::function<void(sim::Time, std::uint64_t)> fn) {
    progress_fn_ = std::move(fn);
  }

  // Out-of-order bytes currently buffered (dormant data, in the paper's
  // terms).
  std::uint64_t buffered_out_of_order() const;

 private:
  // A buffered out-of-order byte range [begin, end).
  struct OooInterval {
    std::uint64_t begin;
    std::uint64_t end;
  };

  // Delegation target of the simulator-convenience constructor.
  TcpReceiver(std::unique_ptr<env::Environment> owned, net::FlowId flow,
              ReceiverConfig cfg);

  RRTCP_HOT void deliver_in_order(std::uint64_t seq, std::uint32_t len);
  RRTCP_HOT void store_out_of_order(std::uint64_t seq, std::uint32_t len);
  RRTCP_HOT void send_ack(bool duplicate);
  RRTCP_HOT void fill_sack_blocks(net::TcpHeader& h) const;
  RRTCP_HOT void note_recent_block(std::uint64_t begin, std::uint64_t end);
  RRTCP_HOT void forget_recent_block(std::uint64_t begin);
  const OooInterval* find_ooo(std::uint64_t begin) const;
  void check_notify();

  // Declared first so the owned environment (simulator-convenience
  // constructor) is destroyed after the env::Timer below.
  std::unique_ptr<env::Environment> owned_env_;
  env::Environment& env_;
  net::FlowId flow_;
  net::NodeId self_;
  net::NodeId peer_;
  ReceiverConfig cfg_;

  std::uint64_t rcv_nxt_ = 0;
  // Out-of-order intervals, non-overlapping, sorted by begin, all above
  // rcv_nxt_. A flat sorted vector, not a node container: the interval
  // count is bounded by the number of concurrent holes (a handful at any
  // window size), and the vector's capacity is retained across loss
  // episodes — so buffering a reordered segment costs zero allocations in
  // steady state, where a std::map paid one node per out-of-order arrival
  // (the dominant per-packet alloc in the e2e bench before this change).
  std::vector<OooInterval> ooo_;
  // SACK recency: most recently updated blocks first, by begin offset.
  // At most 8 entries (hard-capped), kept in a capacity-pinned vector for
  // the same steady-state-allocation-free reason.
  std::vector<std::uint64_t> recent_blocks_;

  // Delayed-ACK state.
  env::Timer delack_timer_;
  bool ack_pending_ = false;

  // ECN state: true between receiving a CE mark and seeing the sender's
  // CWR acknowledgment.
  bool ece_pending_ = false;

  ReceiverStats stats_;

  std::uint64_t notify_bytes_ = 0;
  std::function<void(sim::Time)> notify_fn_;
  std::function<void(sim::Time, std::uint64_t)> progress_fn_;
  std::uint64_t last_unique_ = 0;
};

}  // namespace rrtcp::tcp
