// SACK scoreboard (RFC 2018 sender-side bookkeeping).
//
// Tracks which byte ranges above snd_una the receiver has reported via
// SACK blocks, and which holes have already been retransmitted in the
// current recovery episode. The sender asks for the next hole to repair
// and for pipe-estimation inputs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "net/packet.hpp"

namespace rrtcp::tcp {

class Scoreboard {
 public:
  // Fold the SACK blocks of one ACK into the board and drop state below
  // the cumulative ACK point.
  void update(const net::TcpHeader& h, std::uint64_t snd_una);

  // Forget everything (recovery exit or timeout).
  void reset();

  bool is_sacked(std::uint64_t seq) const;

  // Highest byte offset (exclusive) covered by any SACK block, or 0.
  std::uint64_t highest_sacked() const { return highest_sacked_; }

  // Bytes SACKed strictly above `seq`.
  std::uint64_t sacked_bytes_above(std::uint64_t seq) const;

  // RFC 3517 IsLost: at least dupthresh * mss bytes above `seq` have been
  // SACKed — strong evidence the segment at `seq` is gone, not reordered.
  bool is_lost(std::uint64_t seq, std::uint32_t mss, int dupthresh) const {
    return sacked_bytes_above(seq) >=
           static_cast<std::uint64_t>(dupthresh) * mss;
  }

  // RFC 3517 SetPipe, in packets: segments in [una, nxt) that are neither
  // SACKed nor deemed lost are in flight; a retransmission adds its
  // segment back.
  long pipe_packets(std::uint64_t una, std::uint64_t nxt, std::uint32_t mss,
                    int dupthresh) const;

  // The next hole to retransmit: the lowest segment starting at or above
  // `from` that is (a) not SACKed, (b) not already retransmitted this
  // episode, and (c) deemed lost per is_lost() when `require_lost` —
  // otherwise merely below highest_sacked() (the lax fallback used when
  // no new data is available). Segments are `mss`-strided from `from`.
  std::optional<std::uint64_t> next_hole(std::uint64_t from,
                                         std::uint32_t mss, int dupthresh,
                                         bool require_lost = true) const;

  // Record that the segment at `seq` was retransmitted.
  void mark_retransmitted(std::uint64_t seq) { rtx_.insert(seq); }
  bool was_retransmitted(std::uint64_t seq) const { return rtx_.count(seq) > 0; }

  // Total SACKed bytes above `snd_una` (dormant data, in the paper's
  // vocabulary — delivered but unacknowledged cumulatively).
  std::uint64_t sacked_bytes() const;

  std::size_t block_count() const { return blocks_.size(); }

 private:
  // Non-overlapping SACKed intervals [begin, end).
  std::map<std::uint64_t, std::uint64_t> blocks_;
  std::set<std::uint64_t> rtx_;
  std::uint64_t highest_sacked_ = 0;
};

}  // namespace rrtcp::tcp
