// Shared TCP types: configuration, phases, statistics, observer hooks.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace rrtcp::tcp {

// Congestion-control phase of a sender, exposed for tracing and tests.
// kRetreat/kProbe are specific to Robust Recovery (the paper's Section 2.2
// sub-phases); the others are common to all variants.
enum class TcpPhase : std::uint8_t {
  kSlowStart,
  kCongestionAvoidance,
  kFastRecovery,   // Reno / New-Reno / SACK recovery
  kRetreat,        // RR: first RTT, exponential back-off
  kProbe,          // RR: linear probing while recovering
  kRtoRecovery,    // slow start following a retransmission timeout
};

const char* to_string(TcpPhase p);

struct TcpConfig {
  // Segment sizing. The paper counts fixed 1000-byte data packets and
  // 40-byte ACKs; we treat `mss` as the on-wire data packet size.
  std::uint32_t mss = 1000;
  std::uint32_t ack_bytes = 40;

  std::uint64_t init_cwnd_pkts = 1;
  std::uint64_t init_ssthresh_pkts = 64;
  std::uint64_t max_window_pkts = 128;  // receiver advertised window

  int dupack_threshold = 3;

  // Smooth-Start (in the spirit of the paper's reference [21], Wang, Xin,
  // Reeves & Shin, ISCC 2000): slow start's per-ACK doubling becomes
  // increasingly bursty as cwnd approaches ssthresh — the very overshoot
  // that creates the bursty in-window losses RR then has to repair. With
  // this knob, once cwnd passes ssthresh/2 the growth rate halves (one
  // MSS per two ACKs), easing into congestion avoidance instead of
  // slamming into the queue. Orthogonal to the recovery scheme, exactly
  // as the paper positions it.
  bool smooth_start = false;

  // ECN (RFC 3168): send ECN-capable data, respond to ECE echoes with a
  // once-per-window multiplicative decrease (no retransmission), and
  // signal CWR back. Both endpoints' flags are set by the flow factory
  // from this value. Off by default — the paper predates deployed ECN.
  bool ecn_enabled = false;

  // Limit on packets released by one incoming ACK outside of slow start
  // (New-Reno / SACK "maxburst"; Section 2.2.3 discusses its weaknesses —
  // RR does not need it but the baselines do).
  int maxburst = 4;

  // RTO behavior: coarse timers as in the paper's era (BSD 500 ms ticks,
  // 1 s minimum) so that "a coarse timeout follows" is faithfully costly.
  sim::Time min_rto = sim::Time::seconds(1.0);
  sim::Time max_rto = sim::Time::seconds(64.0);
  sim::Time initial_rto = sim::Time::seconds(3.0);
  sim::Time rto_granularity = sim::Time::milliseconds(500);

  // Robust Recovery hardening knobs (see the implementation notes in
  // core/rr_sender.cpp; the ablation bench flips these):
  //
  // When true (implementation note 1 in core/rr_sender.cpp), the extra
  // probe packet of a clean recovery-RTT boundary is serialized BEFORE the
  // hole retransmission so its dup ACK is counted in the closing RTT.
  // When false, the retransmission goes first — the naive order, whose
  // systematic ndup undercount makes the further-loss detector fire every
  // RTT and triggers retransmission storms after exit extensions.
  bool rr_probe_packet_first = true;
  // When true, retransmissions for holes above the ORIGINAL exit point are
  // limited to the measured further-loss count (actnum - ndup deficits);
  // when false, every probe-RTT boundary retransmits unconditionally —
  // the paper's literal reading, which resends in-flight data whenever
  // recover_ has been extended past hole-free territory.
  bool rr_budget_rtx = true;
  // Rescue retransmission (analogous to RFC 6675's rescue rule): if the
  // hole retransmitted at the last recovery-RTT boundary is still unACKed
  // after a full self-clocked RTT's worth of duplicate ACKs (expected
  // deliveries + dupack_threshold), retransmit it once more. Repairs a
  // LOST RETRANSMISSION without the coarse timeout the paper resigns
  // itself to; also covers holes the retransmission budget missed.
  bool rr_rescue_rtx = true;
};

struct SenderStats {
  std::uint64_t data_packets_sent = 0;   // first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;    // recovery episodes entered
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t dupacks_received = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t ecn_reductions = 0;  // once-per-window ECE responses
};

// Observer for sender-side events; used by tracers, tests, examples and the
// protocol-invariant auditor (src/audit). All methods have empty defaults so
// observers override only what they use.
class SenderObserver {
 public:
  virtual ~SenderObserver() = default;
  virtual void on_send(sim::Time /*now*/, std::uint64_t /*seq*/,
                       std::uint32_t /*len*/, bool /*retransmission*/) {}
  // Fires when an ACK arrives, BEFORE the variant's handler runs.
  virtual void on_ack(sim::Time /*now*/, std::uint64_t /*ack*/,
                      bool /*duplicate*/) {}
  // Fires after the variant's handler for the same ACK has completed, so the
  // observer sees the post-event sender state (the auditor's check point).
  virtual void on_ack_processed(sim::Time /*now*/, std::uint64_t /*ack*/,
                                bool /*duplicate*/) {}
  virtual void on_phase(sim::Time /*now*/, TcpPhase /*phase*/) {}
  virtual void on_timeout(sim::Time /*now*/) {}
  virtual void on_cwnd(sim::Time /*now*/, double /*cwnd_packets*/) {}
};

}  // namespace rrtcp::tcp
