// Retransmission-timeout estimation: Jacobson/Karels smoothed RTT with
// Karn's rule applied by the caller (retransmitted segments are never
// sampled), exponential back-off, and coarse-grained rounding that models
// the 500 ms BSD timer ticks of the paper's era.
#pragma once

#include "sim/time.hpp"
#include "tcp/types.hpp"

namespace rrtcp::tcp {

class RtoEstimator {
 public:
  explicit RtoEstimator(const TcpConfig& cfg);

  // Feed one round-trip time measurement (from a non-retransmitted
  // segment). Resets any exponential back-off.
  void sample(sim::Time rtt);

  // Current timeout value: srtt + 4*rttvar, backed off, rounded up to the
  // timer granularity and clamped to [min_rto, max_rto].
  sim::Time rto() const;

  // Double the timeout (called on each retransmission timeout). Saturating:
  // once rto() is pinned at max_rto, further calls leave backoff_count()
  // unchanged, so the counter reflects doublings that had an effect and a
  // later sample() reset recovers the pre-backoff timeout exactly.
  void backoff();

  bool has_samples() const { return has_sample_; }
  sim::Time srtt() const { return srtt_; }
  sim::Time rttvar() const { return rttvar_; }
  int backoff_count() const { return backoff_; }

 private:
  sim::Time min_rto_;
  sim::Time max_rto_;
  sim::Time initial_rto_;
  sim::Time granularity_;

  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  bool has_sample_ = false;
  int backoff_ = 0;
};

}  // namespace rrtcp::tcp
