// TCP New-Reno (Hoe 1996 / RFC 2582): Reno fast recovery with partial-ACK
// handling. A partial ACK — one that advances snd_una but not past the
// `recover` point captured at recovery entry — signals the next hole;
// New-Reno retransmits it immediately and STAYS in recovery, deflating
// cwnd by the amount ACKed. One lost segment is recovered per RTT.
//
// This is the paper's principal baseline; its weaknesses (the per-RTT
// exponential decay of new-data transmissions, blindness to losses among
// packets sent during recovery, and the big-ACK burst at exit) are exactly
// what Robust Recovery (src/core) repairs.
#pragma once

#include "tcp/sender_base.hpp"

namespace rrtcp::tcp {

class NewRenoSender final : public TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "newreno"; }
  bool in_recovery() const { return in_recovery_; }
  std::uint64_t recover_point() const { return recover_; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
  void handle_timeout_cleanup() override;

 private:
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  // RFC 2582's "avoid multiple fast retransmits": after a timeout or exit,
  // dup ACKs below `recover_` must not re-trigger recovery.
  bool recover_valid_ = false;
};

}  // namespace rrtcp::tcp
