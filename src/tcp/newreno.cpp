#include "tcp/newreno.hpp"

namespace rrtcp::tcp {

void NewRenoSender::handle_new_ack(const net::TcpHeader& h,
                                   std::uint64_t newly_acked) {
  if (in_recovery_) {
    if (h.ack >= recover_) {
      // Full ACK: all data outstanding at recovery entry is covered.
      in_recovery_ = false;
      set_cwnd(ssthresh_bytes());
      update_open_phase();
      send_new_data(cfg_.maxburst);
      return;
    }
    // Partial ACK: retransmit the next hole, deflate, stay in recovery.
    retransmit(snd_una());
    std::uint64_t cw = cwnd_bytes();
    cw = cw > newly_acked ? cw - newly_acked : cfg_.mss;
    if (newly_acked >= cfg_.mss) cw += cfg_.mss;
    set_cwnd(cw);
    send_new_data(1);
    return;
  }
  open_cwnd();
  send_new_data();
}

void NewRenoSender::handle_dup_ack(const net::TcpHeader& h) {
  if (in_recovery_) {
    set_cwnd(cwnd_bytes() + cfg_.mss);
    send_new_data(cfg_.maxburst);
    return;
  }
  if (dupacks() != cfg_.dupack_threshold) return;
  // Avoid a second fast retransmit for the same window of data.
  if (recover_valid_ && h.ack < recover_) return;
  count_fast_retransmit();
  recover_ = max_sent();
  recover_valid_ = true;
  halve_ssthresh();
  retransmit(snd_una());
  set_cwnd(ssthresh_bytes() + 3 * cfg_.mss);
  in_recovery_ = true;
  set_phase(TcpPhase::kFastRecovery);
}

void NewRenoSender::handle_timeout_cleanup() {
  in_recovery_ = false;
  // After a timeout, dup ACKs for data below max_sent() must not trigger
  // another fast retransmit (RFC 2582, Section 3 step 6).
  recover_ = max_sent();
  recover_valid_ = true;
}

}  // namespace rrtcp::tcp
