#include "tcp/receiver.hpp"

#include <algorithm>

#include "env/sim_env.hpp"
#include "sim/assert.hpp"
#include "sim/log.hpp"

namespace rrtcp::tcp {

TcpReceiver::TcpReceiver(env::Environment& env, net::FlowId flow,
                         ReceiverConfig cfg)
    : env_{env},
      flow_{flow},
      self_{env.local_id()},
      peer_{env.peer_id()},
      cfg_{cfg},
      delack_timer_{env, [this] {
                      if (ack_pending_) send_ack(false);
                    }} {
  // Pre-size the reassembly state so steady-state loss handling never
  // touches the allocator: the hole count is window-bounded and the SACK
  // recency list is hard-capped at 8 (9 = cap + 1 transient slot).
  ooo_.reserve(64);
  recent_blocks_.reserve(9);
  env_.attach(flow_, this);
}

TcpReceiver::TcpReceiver(std::unique_ptr<env::Environment> owned,
                         net::FlowId flow, ReceiverConfig cfg)
    : TcpReceiver(*owned, flow, cfg) {
  owned_env_ = std::move(owned);
}

TcpReceiver::TcpReceiver(sim::Simulator& sim, net::Node& node,
                         net::FlowId flow, net::NodeId peer,
                         ReceiverConfig cfg)
    : TcpReceiver(std::make_unique<env::SimEnvironment>(sim, node, peer),
                  flow, cfg) {}

TcpReceiver::~TcpReceiver() { env_.detach(flow_); }

void TcpReceiver::receive(net::Packet p) {
  RRTCP_ASSERT_MSG(p.is_data(), "receiver got a non-data packet");
  ++stats_.data_packets;
  struct ProgressGuard {
    TcpReceiver* self;
    ~ProgressGuard() {
      const std::uint64_t u = self->unique_bytes();
      if (u > self->last_unique_) {
        self->last_unique_ = u;
        if (self->progress_fn_) self->progress_fn_(self->env_.now(), u);
      }
    }
  } guard{this};
  const std::uint64_t seq = p.tcp.seq;
  const std::uint32_t len = p.tcp.payload;
  RRTCP_ASSERT(len > 0);

  if (cfg_.ecn_enabled) {
    if (p.tcp.ce) ece_pending_ = true;
    if (p.tcp.cwr) ece_pending_ = false;  // sender has reacted
  }

  if (seq == rcv_nxt_) {
    deliver_in_order(seq, len);
    // In-order arrival: eligible for delayed ACK.
    if (cfg_.delayed_ack && !ack_pending_) {
      ack_pending_ = true;
      delack_timer_.schedule(cfg_.delack_timeout);
    } else {
      send_ack(false);
    }
    check_notify();
    return;
  }

  if (seq + len <= rcv_nxt_) {
    // Entirely old (a spurious retransmission): re-ACK so the sender's
    // cumulative state converges.
    ++stats_.duplicates;
    send_ack(true);
    return;
  }

  // Out of order (a hole precedes it). The delayed-ACK mechanism is off for
  // out-of-sequence data: ACK immediately (Section 2.2).
  ++stats_.out_of_order;
  store_out_of_order(seq, len);
  send_ack(true);
}

void TcpReceiver::deliver_in_order(std::uint64_t seq, std::uint32_t len) {
  RRTCP_ASSERT(seq == rcv_nxt_);
  rcv_nxt_ += len;
  note_recent_block(seq, rcv_nxt_);
  // Pull any now-contiguous buffered intervals across.
  std::size_t consumed = 0;
  while (consumed < ooo_.size() && ooo_[consumed].begin <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, ooo_[consumed].end);
    ++consumed;
  }
  if (consumed > 0)
    ooo_.erase(ooo_.begin(),
               ooo_.begin() + static_cast<std::ptrdiff_t>(consumed));
  // Blocks at or below rcv_nxt_ are no longer reportable as SACK blocks.
  std::erase_if(recent_blocks_, [this](std::uint64_t b) {
    return b < rcv_nxt_ || find_ooo(b) == nullptr;
  });
}

void TcpReceiver::store_out_of_order(std::uint64_t seq, std::uint32_t len) {
  std::uint64_t begin = seq;
  std::uint64_t end = seq + len;
  // Merge with any overlapping or adjacent intervals: absorb a predecessor
  // that reaches `begin`, then every successor starting at or before `end`.
  auto ge = std::lower_bound(
      ooo_.begin(), ooo_.end(), begin,
      [](const OooInterval& iv, std::uint64_t b) { return iv.begin < b; });
  std::size_t lo = static_cast<std::size_t>(ge - ooo_.begin());
  std::size_t hi = lo;
  if (lo > 0 && ooo_[lo - 1].end >= begin) {
    --lo;
    begin = ooo_[lo].begin;
    end = std::max(end, ooo_[lo].end);
    forget_recent_block(ooo_[lo].begin);
  }
  while (hi < ooo_.size() && ooo_[hi].begin <= end) {
    end = std::max(end, ooo_[hi].end);
    forget_recent_block(ooo_[hi].begin);
    ++hi;
  }
  // Replace the absorbed run [lo, hi) with the single merged interval.
  if (hi == lo) {
    // ooo_ reserves 64 slots in the constructor and the hole count is
    // window-bounded; capacity is retained across loss episodes, so this
    // insert shifts, never grows.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    ooo_.insert(ooo_.begin() + static_cast<std::ptrdiff_t>(lo),
                OooInterval{begin, end});
  } else {
    ooo_[lo] = OooInterval{begin, end};
    ooo_.erase(ooo_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
               ooo_.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  note_recent_block(begin, end);
}

void TcpReceiver::note_recent_block(std::uint64_t begin, std::uint64_t end) {
  (void)end;
  // Only out-of-order intervals are SACK-reportable; in-order delivery
  // passes begin < rcv_nxt_ and is filtered in deliver_in_order().
  forget_recent_block(begin);
  // recent_blocks_ reserves 9 slots (hard cap 8 + the transient insert)
  // in the constructor, so this front-insert shifts within pinned
  // capacity and the resize below only ever shrinks.
  // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
  recent_blocks_.insert(recent_blocks_.begin(), begin);
  // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
  if (recent_blocks_.size() > 8) recent_blocks_.resize(8);
}

void TcpReceiver::forget_recent_block(std::uint64_t begin) {
  recent_blocks_.erase(
      std::remove(recent_blocks_.begin(), recent_blocks_.end(), begin),
      recent_blocks_.end());
}

const TcpReceiver::OooInterval* TcpReceiver::find_ooo(
    std::uint64_t begin) const {
  auto it = std::lower_bound(
      ooo_.begin(), ooo_.end(), begin,
      [](const OooInterval& iv, std::uint64_t b) { return iv.begin < b; });
  if (it == ooo_.end() || it->begin != begin) return nullptr;
  return &*it;
}

void TcpReceiver::fill_sack_blocks(net::TcpHeader& h) const {
  h.n_sack = 0;
  for (std::uint64_t begin : recent_blocks_) {
    const OooInterval* iv = find_ooo(begin);
    if (iv == nullptr) continue;
    h.sack[h.n_sack++] = net::SackBlock{iv->begin, iv->end};
    if (h.n_sack == net::kMaxSackBlocks) break;
  }
}

void TcpReceiver::send_ack(bool duplicate) {
  ack_pending_ = false;
  delack_timer_.cancel();

  net::Packet ack;
  ack.uid = net::next_packet_uid();
  ack.flow = flow_;
  ack.src = self_;
  ack.dst = peer_;
  ack.type = net::PacketType::kAck;
  ack.size_bytes = cfg_.ack_bytes;
  ack.tcp.ack = rcv_nxt_;
  ack.tcp.ece = ece_pending_;
  if (cfg_.sack_enabled) fill_sack_blocks(ack.tcp);
  ++stats_.acks_sent;
  if (duplicate) ++stats_.dupacks_sent;
  RRTCP_ENV_TRACE(env_, "tcp-rcv", "flow=%u ack=%llu dup=%d nsack=%d",
                  flow_, static_cast<unsigned long long>(rcv_nxt_), duplicate,
                  ack.tcp.n_sack);
  env_.send(std::move(ack));
}

std::uint64_t TcpReceiver::buffered_out_of_order() const {
  std::uint64_t total = 0;
  for (const OooInterval& iv : ooo_) total += iv.end - iv.begin;
  return total;
}

void TcpReceiver::notify_at(std::uint64_t bytes,
                            std::function<void(sim::Time)> fn) {
  notify_bytes_ = bytes;
  notify_fn_ = std::move(fn);
  check_notify();
}

void TcpReceiver::check_notify() {
  if (notify_fn_ && rcv_nxt_ >= notify_bytes_) {
    auto fn = std::move(notify_fn_);
    notify_fn_ = nullptr;
    fn(env_.now());
  }
}

}  // namespace rrtcp::tcp
