#include "tcp/scoreboard.hpp"

#include <algorithm>

namespace rrtcp::tcp {

void Scoreboard::update(const net::TcpHeader& h, std::uint64_t snd_una) {
  for (int i = 0; i < h.n_sack; ++i) {
    std::uint64_t begin = h.sack[i].begin;
    std::uint64_t end = h.sack[i].end;
    if (end <= begin) continue;
    if (end <= snd_una) continue;
    begin = std::max(begin, snd_una);
    highest_sacked_ = std::max(highest_sacked_, end);

    // Merge into blocks_.
    auto it = blocks_.lower_bound(begin);
    if (it != blocks_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= begin) {
        begin = prev->first;
        end = std::max(end, prev->second);
        blocks_.erase(prev);
      }
    }
    while (true) {
      it = blocks_.lower_bound(begin);
      if (it == blocks_.end() || it->first > end) break;
      end = std::max(end, it->second);
      blocks_.erase(it);
    }
    blocks_[begin] = end;
  }

  // Drop state at or below the cumulative ACK.
  while (!blocks_.empty() && blocks_.begin()->second <= snd_una)
    blocks_.erase(blocks_.begin());
  if (!blocks_.empty() && blocks_.begin()->first < snd_una) {
    auto node = blocks_.extract(blocks_.begin());
    const std::uint64_t end = node.mapped();
    blocks_[snd_una] = end;
  }
  std::erase_if(rtx_, [snd_una](std::uint64_t s) { return s < snd_una; });
}

void Scoreboard::reset() {
  blocks_.clear();
  rtx_.clear();
  highest_sacked_ = 0;
}

bool Scoreboard::is_sacked(std::uint64_t seq) const {
  auto it = blocks_.upper_bound(seq);
  if (it == blocks_.begin()) return false;
  --it;
  return seq >= it->first && seq < it->second;
}

std::optional<std::uint64_t> Scoreboard::next_hole(std::uint64_t from,
                                                   std::uint32_t mss,
                                                   int dupthresh,
                                                   bool require_lost) const {
  for (std::uint64_t seq = from; seq + 1 <= highest_sacked_; seq += mss) {
    if (is_sacked(seq)) continue;
    if (rtx_.count(seq)) continue;
    if (require_lost && !is_lost(seq, mss, dupthresh)) continue;
    return seq;
  }
  return std::nullopt;
}

std::uint64_t Scoreboard::sacked_bytes_above(std::uint64_t seq) const {
  std::uint64_t total = 0;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (it->second <= seq) break;
    total += it->second - std::max(it->first, seq);
  }
  return total;
}

long Scoreboard::pipe_packets(std::uint64_t una, std::uint64_t nxt,
                              std::uint32_t mss, int dupthresh) const {
  long pipe = 0;
  for (std::uint64_t s = una; s < nxt; s += mss) {
    const bool sacked = is_sacked(s);
    if (!sacked && !is_lost(s, mss, dupthresh)) ++pipe;
    if (rtx_.count(s)) ++pipe;  // its retransmission is in flight
  }
  return pipe;
}

std::uint64_t Scoreboard::sacked_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [b, e] : blocks_) total += e - b;
  return total;
}

}  // namespace rrtcp::tcp
