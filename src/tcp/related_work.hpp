// Related-work recovery schemes discussed in the paper's introduction —
// the proposals RR positions itself against:
//
// * RIGHT-EDGE RECOVERY (Balakrishnan et al., "TCP Behavior of a Busy
//   Internet Server", INFOCOM'98): during fast recovery, "one new data
//   packet is sent out upon receipt of EACH duplicate ACK, instead of two
//   duplicate ACKs" — keeps the ACK clock alive under tiny windows, but
//   (the paper's critique) does not reduce aggressiveness when congestion
//   has just been signalled, and cannot detect losses of the new packets
//   it sends during recovery.
//
// * LIN-KUNG RECOVERY (Lin & Kung, "TCP Fast Recovery Strategies",
//   INFOCOM'98): "a new data packet be generated upon each arrival of the
//   first two duplicate ACKs" — i.e. even BEFORE fast retransmit fires,
//   the first two dup ACKs each clock out one new packet, retaining TCP's
//   aggressiveness when the dup ACKs stem from reordering rather than
//   loss. The paper's critique: when they do stem from loss, these
//   packets "add more fuel to the fire" at the congested bottleneck.
//
// Both are implemented as deltas on New-Reno (their published base), so
// the comparison isolates exactly the recovery-transmission policy.
#pragma once

#include "tcp/newreno.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::tcp {

class RightEdgeSender final : public TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "rightedge"; }
  bool in_recovery() const { return in_recovery_; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
  void handle_timeout_cleanup() override;

 private:
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  bool recover_valid_ = false;
};

class LinKungSender final : public TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "linkung"; }
  bool in_recovery() const { return in_recovery_; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
  void handle_timeout_cleanup() override;

 private:
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  bool recover_valid_ = false;
};

}  // namespace rrtcp::tcp
