#include "tcp/reno.hpp"

namespace rrtcp::tcp {

void RenoSender::handle_new_ack(const net::TcpHeader&, std::uint64_t) {
  if (in_recovery_) {
    // Deflate: any new ACK ends Reno's recovery.
    in_recovery_ = false;
    set_cwnd(ssthresh_bytes());
    update_open_phase();
    send_new_data(cfg_.maxburst);
    return;
  }
  open_cwnd();
  send_new_data();
}

void RenoSender::handle_dup_ack(const net::TcpHeader&) {
  if (in_recovery_) {
    // Window inflation: each dup ACK signals one packet has left the pipe.
    set_cwnd(cwnd_bytes() + cfg_.mss);
    send_new_data(cfg_.maxburst);
    return;
  }
  if (dupacks() != cfg_.dupack_threshold) return;
  count_fast_retransmit();
  halve_ssthresh();
  retransmit(snd_una());
  set_cwnd(ssthresh_bytes() + 3 * cfg_.mss);
  in_recovery_ = true;
  set_phase(TcpPhase::kFastRecovery);
}

}  // namespace rrtcp::tcp
