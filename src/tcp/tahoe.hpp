// TCP Tahoe (Jacobson 1988): slow start + congestion avoidance + fast
// retransmit. No fast recovery — the third duplicate ACK is treated like a
// timeout: ssthresh is halved, cwnd collapses to one segment, and the
// sender slow-starts from snd_una (go-back-N). Wasteful after a single
// loss, but — as the paper observes — more robust than New-Reno under
// heavy bursty loss because slow-start resends the whole suffix instead of
// fishing out one hole per RTT.
#pragma once

#include "tcp/sender_base.hpp"

namespace rrtcp::tcp {

class TahoeSender final : public TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "tahoe"; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
};

}  // namespace rrtcp::tcp
