// TCP sender framework.
//
// TcpSenderBase implements everything the congestion-control variants have
// in common: the sequence space, segmentation of application data, the
// retransmission timer (coarse-grained, Karn-compliant BSD-style single-
// segment RTT timing), cumulative-ACK bookkeeping, duplicate-ACK
// classification, and observer/tracing plumbing. Variants (Tahoe, Reno,
// New-Reno, SACK, and the paper's Robust Recovery in src/core) override
// two hooks — handle_new_ack() and handle_dup_ack() — plus a timeout
// cleanup hook, and drive transmission through the protected helpers.
//
// The sender talks to the world only through env::Environment — clock,
// timers, packet I/O, trace sink — so the same variant object runs inside
// the simulator (env::SimEnvironment) and over real sockets
// (live::LiveEnvironment) without modification. The (Simulator&, Node&)
// constructor is a convenience that owns a SimEnvironment internally;
// simulation drivers that need the environment explicitly build one and
// use the primary constructor.
//
// Sequence numbers are 64-bit byte offsets starting at 0; a segment is
// `mss` bytes except possibly the final one of a finite transfer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "env/environment.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/small_fn.hpp"
#include "tcp/rto.hpp"
#include "tcp/types.hpp"

namespace rrtcp::sim {
class Simulator;
}

namespace rrtcp::tcp {

class TcpSenderBase : public net::Agent {
 public:
  // Primary: the sender lives wherever `env` says. `env` must outlive the
  // sender.
  TcpSenderBase(env::Environment& env, net::FlowId flow, TcpConfig cfg = {});
  // Simulator convenience: owns an env::SimEnvironment over (sim, node)
  // addressed to `dst`. Equivalent to building that environment yourself.
  TcpSenderBase(sim::Simulator& sim, net::Node& node, net::FlowId flow,
                net::NodeId dst, TcpConfig cfg = {});
  ~TcpSenderBase() override;

  // ---- Application interface -----------------------------------------
  // Total bytes this connection will carry; nullopt = unbounded (FTP with
  // an infinite backlog). Must be set before start() for finite transfers.
  void set_app_bytes(std::optional<std::uint64_t> total) { app_total_ = total; }
  std::optional<std::uint64_t> app_bytes() const { return app_total_; }

  // Append `bytes` to a finite transfer's application backlog and, if the
  // sender is running, transmit whatever the window allows. This is how
  // incremental sources (the ON/OFF web-like model in src/traffic/) feed a
  // connection: arm an empty backlog with set_app_bytes(0), then enqueue
  // bursts as they arrive. Requires a finite backlog — an unbounded sender
  // already has infinite data. completion_time() records the FIRST time the
  // backlog drained; after further enqueues complete() goes false again.
  void app_enqueue(std::uint64_t bytes);

  // Begin transmitting at the current environment time.
  void start();
  bool started() const { return started_; }

  // All application bytes ACKed (finite transfers only).
  bool complete() const {
    return app_total_.has_value() && snd_una_ >= *app_total_;
  }
  sim::Time start_time() const { return start_time_; }
  sim::Time completion_time() const { return completed_at_; }
  // Invoked once, at the first instant the transfer completes. The capture
  // must fit CompleteFn's inline buffer (a few pointers) — completion is
  // observed on the ACK hot path and must stay allocation-free.
  template <typename F>
  void set_complete_callback(F&& fn) {
    complete_fn_.emplace(std::forward<F>(fn));
  }

  // ---- net::Agent ------------------------------------------------------
  void receive(net::Packet p) final;

  // ---- Introspection ---------------------------------------------------
  std::uint64_t snd_una() const { return snd_una_; }   // lowest unACKed byte
  std::uint64_t snd_nxt() const { return snd_nxt_; }   // next byte to send
  std::uint64_t max_sent() const { return max_sent_; } // "maxseq": bytes ever sent
  std::uint64_t cwnd_bytes() const { return cwnd_; }
  double cwnd_packets() const {
    return static_cast<double>(cwnd_) / cfg_.mss;
  }
  std::uint64_t ssthresh_bytes() const { return ssthresh_; }
  int dupacks() const { return dupacks_; }
  TcpPhase phase() const { return phase_; }
  const SenderStats& stats() const { return stats_; }
  const TcpConfig& config() const { return cfg_; }
  env::Environment& environment() { return env_; }

  // Classic TCP's view of outstanding data (the quantity the paper argues
  // over-estimates the pipe during recovery).
  std::uint64_t flight_bytes() const { return snd_nxt_ - snd_una_; }

  // ---- Liveness introspection ------------------------------------------
  // The retransmission timer is the sender's last-resort escape hatch: a
  // correct sender keeps it armed whenever data is outstanding. The chaos
  // watchdog (src/chaos/watchdog.hpp) and the liveness audit invariants
  // read this surface; nothing here grants control over the timer.
  const RtoEstimator& rto_estimator() const { return rto_; }
  bool rto_pending() const { return rto_timer_.pending(); }
  // Absolute expiry of the armed timer; meaningful only while pending().
  sim::Time rto_expiry() const { return rto_timer_.expiry(); }

  void add_observer(SenderObserver* obs) { observers_.push_back(obs); }
  void remove_observer(SenderObserver* obs) {
    std::erase(observers_, obs);
  }

  virtual const char* variant_name() const = 0;

 protected:
  // ---- Variant hooks ---------------------------------------------------
  // Called after the base has advanced snd_una_ to h.ack, reset dupacks_,
  // and managed the RTO timer. `newly_acked` is the number of bytes this
  // ACK newly covered.
  virtual void handle_new_ack(const net::TcpHeader& h,
                              std::uint64_t newly_acked) = 0;
  // Called for each duplicate ACK (h.ack == snd_una_, data outstanding);
  // dupacks_ has already been incremented.
  virtual void handle_dup_ack(const net::TcpHeader& h) = 0;
  // Called when the retransmission timer fires, after the base has reset
  // cwnd/ssthresh and before the segment at snd_una_ is retransmitted.
  // Variants clear any recovery-specific state here.
  virtual void handle_timeout_cleanup() {}

  // ---- Helpers for variants -------------------------------------------
  std::uint64_t effective_window() const;
  std::uint64_t max_window_bytes() const {
    return cfg_.max_window_pkts * cfg_.mss;
  }
  // Length of the segment starting at `seq` (mss, or the finite tail).
  std::uint32_t segment_len_at(std::uint64_t seq) const;
  // Unsent application data exists at snd_nxt_.
  bool app_data_available() const;

  // Send the next new segment at snd_nxt_ regardless of cwnd (used by the
  // self-clocked recovery paths); bounded by data availability and — unless
  // `ignore_rwnd` — by the receiver window. RR's recovery passes
  // ignore_rwnd=true: the flight-based receiver-window check counts
  // dormant packets already buffered at the receiver (exactly the
  // over-estimation the paper's Section 2.1 criticizes), and the receiver
  // model, like an ns-2 sink, reassembles out-of-order data without
  // bound. Returns true if a segment left.
  bool send_one_new_segment(bool ignore_rwnd = false);
  // Send new segments while flight < effective_window(), up to max_packets.
  // Returns how many were sent.
  int send_new_data(int max_packets = 1 << 30);
  // Retransmit the segment starting at `seq`.
  void retransmit(std::uint64_t seq);

  // Slow-start / congestion-avoidance window growth for one ACK, plus the
  // matching phase update. Not used inside recovery.
  void open_cwnd();
  // ssthresh := max(2*MSS, window/2) — the standard multiplicative back-off
  // (ns-2's CLOSE_SSTHRESH_HALF, using window = min(cwnd, rwnd)).
  void halve_ssthresh();

  void set_cwnd(std::uint64_t bytes);
  void set_ssthresh(std::uint64_t bytes) { ssthresh_ = bytes; }
  void set_phase(TcpPhase p);
  // Phase := slow-start or congestion-avoidance from cwnd vs ssthresh.
  void update_open_phase();

  // Roll transmission back to snd_una_ (go-back-N restart; Tahoe and the
  // timeout path use this).
  void rollback_snd_nxt() { snd_nxt_ = snd_una_; }
  void count_fast_retransmit() { ++stats_.fast_retransmits; }

  void restart_rto_timer();
  void stop_rto_timer();

  // The base timeout action: back off the RTO, collapse to one segment,
  // roll snd_nxt_ back to snd_una_ (go-back-N) and retransmit.
  virtual void on_retransmission_timeout();

  // Declared before env_ so that, in reverse destruction order, the owned
  // environment (when the simulator-convenience constructor built one)
  // outlives the env::Timer member below, whose destructor calls back into
  // it.
  std::unique_ptr<env::Environment> owned_env_;
  env::Environment& env_;
  TcpConfig cfg_;

 private:
  // Delegation target of the simulator-convenience constructor: runs the
  // primary constructor against *owned, then takes ownership.
  TcpSenderBase(std::unique_ptr<env::Environment> owned, net::FlowId flow,
                TcpConfig cfg);

  void transmit(std::uint64_t seq, std::uint32_t len, bool is_rtx);
  void handle_ecn_echo();
  void maybe_sample_rtt(std::uint64_t ack);
  void check_complete();
  void notify_send(std::uint64_t seq, std::uint32_t len, bool rtx);
  void notify_ack(std::uint64_t ack, bool dup);
  void notify_ack_processed(std::uint64_t ack, bool dup);

  net::FlowId flow_;
  net::NodeId self_;
  net::NodeId dst_;

  bool started_ = false;
  sim::Time start_time_ = sim::Time::zero();
  sim::Time completed_at_ = sim::Time::zero();
  using CompleteFn = sim::SmallCallable<void(sim::Time), 48>;
  CompleteFn complete_fn_;

  std::optional<std::uint64_t> app_total_;

  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t max_sent_ = 0;

  std::uint64_t cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  int dupacks_ = 0;
  TcpPhase phase_ = TcpPhase::kSlowStart;

  RtoEstimator rto_;
  env::Timer rto_timer_;

  // Smooth-Start: toggles on each ACK inside the smoothing region so the
  // window grows every second ACK.
  bool smooth_pending_ = false;

  // ECN state: reduce once per window (snd_una must pass the reduction
  // point before another ECE acts); CWR is carried on the next data
  // segment after a reduction.
  std::uint64_t ecn_cwr_point_ = 0;
  bool cwr_pending_ = false;

  // BSD-style single-segment RTT timing (Karn-safe): we time one first
  // transmission at a time and invalidate it if that range is ever resent.
  bool timing_ = false;
  std::uint64_t timed_seq_ = 0;  // sample completes when snd_una_ > this
  sim::Time timed_at_ = sim::Time::zero();

  SenderStats stats_;
  std::vector<SenderObserver*> observers_;
};

}  // namespace rrtcp::tcp
