// TCP Reno (Jacobson 1990): fast retransmit + fast recovery.
//
// On the third duplicate ACK: halve ssthresh, retransmit the first lost
// segment, and inflate cwnd by one MSS per further duplicate ACK so that
// new data keeps flowing. ANY new ACK deflates cwnd to ssthresh and exits
// recovery — which is exactly why Reno handles bursty losses poorly: each
// loss in a window re-triggers the whole dance (halving again) or, worse,
// strands the connection until a coarse timeout.
#pragma once

#include "tcp/sender_base.hpp"

namespace rrtcp::tcp {

class RenoSender final : public TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "reno"; }
  bool in_recovery() const { return in_recovery_; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
  void handle_timeout_cleanup() override { in_recovery_ = false; }

 private:
  bool in_recovery_ = false;
};

}  // namespace rrtcp::tcp
