#include "tcp/rto.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace rrtcp::tcp {

const char* to_string(TcpPhase p) {
  switch (p) {
    case TcpPhase::kSlowStart:
      return "slow-start";
    case TcpPhase::kCongestionAvoidance:
      return "congestion-avoidance";
    case TcpPhase::kFastRecovery:
      return "fast-recovery";
    case TcpPhase::kRetreat:
      return "rr-retreat";
    case TcpPhase::kProbe:
      return "rr-probe";
    case TcpPhase::kRtoRecovery:
      return "rto-recovery";
  }
  return "?";
}

RtoEstimator::RtoEstimator(const TcpConfig& cfg)
    : min_rto_{cfg.min_rto},
      max_rto_{cfg.max_rto},
      initial_rto_{cfg.initial_rto},
      granularity_{cfg.rto_granularity} {
  RRTCP_ASSERT(min_rto_ > sim::Time::zero());
  RRTCP_ASSERT(max_rto_ >= min_rto_);
}

void RtoEstimator::sample(sim::Time rtt) {
  RRTCP_ASSERT(rtt >= sim::Time::zero());
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298 with the classic gains: alpha=1/8, beta=1/4, in integer
    // picosecond arithmetic.
    const sim::Time err = rtt >= srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = (rttvar_ * 3) / 4 + err / 4;
    srtt_ = (srtt_ * 7) / 8 + rtt / 8;
  }
  backoff_ = 0;
}

sim::Time RtoEstimator::rto() const {
  sim::Time base = has_sample_ ? srtt_ + 4 * rttvar_ : initial_rto_;
  for (int i = 0; i < backoff_; ++i) {
    base = base * 2;
    if (base >= max_rto_) return max_rto_;
  }
  // Round *up* to the timer granularity: a coarse timer cannot fire early.
  if (granularity_ > sim::Time::zero()) {
    const std::int64_t g = granularity_.ps();
    const std::int64_t rounded = (base.ps() + g - 1) / g * g;
    base = sim::Time::picoseconds(rounded);
  }
  return std::clamp(base, min_rto_, max_rto_);
}

void RtoEstimator::backoff() {
  // Saturate: once the backed-off value already pins at max_rto, further
  // doublings cannot change rto() and would only inflate backoff_count —
  // making the reset after a successful sample() meaningless and, in the
  // pathological many-timeout case, eventually overflowing the counter.
  if (rto() < max_rto_) ++backoff_;
}

}  // namespace rrtcp::tcp
