// SACK TCP sender ("sack1" in Fall & Floyd 1996 / the conservative pipe
// algorithm later standardized as RFC 3517).
//
// Fast recovery is entered exactly as in Reno, but during recovery the
// sender maintains `pipe` — its estimate of packets currently in the path
// — and transmits (hole retransmissions first, then new data) whenever
// pipe < cwnd. SACK blocks from the receiver tell it precisely which
// segments are holes. Note the paper's critique: pipe only *passively*
// estimates in-flight data while cwnd keeps control; RR's actnum both
// measures and controls.
#pragma once

#include "tcp/scoreboard.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::tcp {

class SackSender final : public TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "sack"; }
  bool in_recovery() const { return in_recovery_; }
  long pipe_packets() const { return pipe_; }
  const Scoreboard& scoreboard() const { return board_; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
  void handle_timeout_cleanup() override;

 private:
  void enter_recovery();
  // Recompute the pipe estimate from the scoreboard (RFC 3517 SetPipe).
  void update_pipe();
  // Send while pipe < cwnd: scoreboard holes first, then new data; at most
  // `maxburst` packets per incoming ACK.
  void send_from_scoreboard();

  Scoreboard board_;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  bool recover_valid_ = false;
  long pipe_ = 0;  // packets
};

}  // namespace rrtcp::tcp
