#include "tcp/related_work.hpp"

namespace rrtcp::tcp {

// ---------------------------------------------------------------------------
// Right-edge recovery: New-Reno control flow, but each dup ACK during
// recovery clocks out one new segment directly (no reliance on cwnd
// inflation crossing the flight size).

void RightEdgeSender::handle_new_ack(const net::TcpHeader& h,
                                     std::uint64_t newly_acked) {
  if (in_recovery_) {
    if (h.ack >= recover_) {
      in_recovery_ = false;
      set_cwnd(ssthresh_bytes());
      update_open_phase();
      send_new_data(cfg_.maxburst);
      return;
    }
    // Partial ACK: repair the next hole, stay in recovery.
    retransmit(snd_una());
    std::uint64_t cw = cwnd_bytes();
    cw = cw > newly_acked ? cw - newly_acked : cfg_.mss;
    if (newly_acked >= cfg_.mss) cw += cfg_.mss;
    set_cwnd(cw);
    return;
  }
  open_cwnd();
  send_new_data();
}

void RightEdgeSender::handle_dup_ack(const net::TcpHeader& h) {
  if (in_recovery_) {
    // The right edge advances on every dup ACK.
    set_cwnd(cwnd_bytes() + cfg_.mss);
    send_one_new_segment();
    return;
  }
  if (dupacks() != cfg_.dupack_threshold) return;
  if (recover_valid_ && h.ack < recover_) return;
  count_fast_retransmit();
  recover_ = max_sent();
  recover_valid_ = true;
  halve_ssthresh();
  retransmit(snd_una());
  set_cwnd(ssthresh_bytes() + 3 * cfg_.mss);
  in_recovery_ = true;
  set_phase(TcpPhase::kFastRecovery);
}

void RightEdgeSender::handle_timeout_cleanup() {
  in_recovery_ = false;
  recover_ = max_sent();
  recover_valid_ = true;
}

// ---------------------------------------------------------------------------
// Lin-Kung: New-Reno plus "a new data packet upon each arrival of the
// first two duplicate ACKs" — pre-recovery aggressiveness retention.

void LinKungSender::handle_new_ack(const net::TcpHeader& h,
                                   std::uint64_t newly_acked) {
  if (in_recovery_) {
    if (h.ack >= recover_) {
      in_recovery_ = false;
      set_cwnd(ssthresh_bytes());
      update_open_phase();
      send_new_data(cfg_.maxburst);
      return;
    }
    retransmit(snd_una());
    std::uint64_t cw = cwnd_bytes();
    cw = cw > newly_acked ? cw - newly_acked : cfg_.mss;
    if (newly_acked >= cfg_.mss) cw += cfg_.mss;
    set_cwnd(cw);
    send_new_data(1);
    return;
  }
  open_cwnd();
  send_new_data();
}

void LinKungSender::handle_dup_ack(const net::TcpHeader& h) {
  if (in_recovery_) {
    set_cwnd(cwnd_bytes() + cfg_.mss);
    send_new_data(cfg_.maxburst);
    return;
  }
  if (dupacks() < cfg_.dupack_threshold) {
    // The Lin-Kung refinement: the 1st and 2nd dup ACK each release one
    // new packet — if this was mere reordering, no throughput was lost.
    send_one_new_segment();
    return;
  }
  if (dupacks() != cfg_.dupack_threshold) return;
  if (recover_valid_ && h.ack < recover_) return;
  count_fast_retransmit();
  recover_ = max_sent();
  recover_valid_ = true;
  halve_ssthresh();
  retransmit(snd_una());
  set_cwnd(ssthresh_bytes() + 3 * cfg_.mss);
  in_recovery_ = true;
  set_phase(TcpPhase::kFastRecovery);
}

void LinKungSender::handle_timeout_cleanup() {
  in_recovery_ = false;
  recover_ = max_sent();
  recover_valid_ = true;
}

}  // namespace rrtcp::tcp
