// Wrap-aware 32-bit TCP sequence-number arithmetic (RFC 793 / RFC 1982).
//
// The simulator itself uses 64-bit byte offsets that never wrap (see
// net/packet.hpp), but a production TCP must compare 32-bit sequence
// numbers modulo 2^32. This header provides that arithmetic as a strong
// type so the comparison rules are encoded once and tested exhaustively —
// it is the bridge a real deployment of RR would use.
#pragma once

#include <compare>
#include <cstdint>

namespace rrtcp::tcp {

class Seq32 {
 public:
  constexpr Seq32() = default;
  explicit constexpr Seq32(std::uint32_t v) : v_{v} {}

  constexpr std::uint32_t raw() const { return v_; }

  // a < b  iff  0 < (b - a) < 2^31 in modular arithmetic.
  friend constexpr bool operator<(Seq32 a, Seq32 b) {
    return static_cast<std::int32_t>(a.v_ - b.v_) < 0;
  }
  friend constexpr bool operator>(Seq32 a, Seq32 b) { return b < a; }
  friend constexpr bool operator<=(Seq32 a, Seq32 b) { return !(b < a); }
  friend constexpr bool operator>=(Seq32 a, Seq32 b) { return !(a < b); }
  friend constexpr bool operator==(Seq32 a, Seq32 b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Seq32 a, Seq32 b) { return a.v_ != b.v_; }

  friend constexpr Seq32 operator+(Seq32 a, std::uint32_t n) {
    return Seq32{a.v_ + n};
  }
  friend constexpr Seq32 operator-(Seq32 a, std::uint32_t n) {
    return Seq32{a.v_ - n};
  }
  // Signed distance from b to a; well-defined while |distance| < 2^31.
  friend constexpr std::int32_t operator-(Seq32 a, Seq32 b) {
    return static_cast<std::int32_t>(a.v_ - b.v_);
  }

  constexpr Seq32& operator+=(std::uint32_t n) {
    v_ += n;
    return *this;
  }

 private:
  std::uint32_t v_ = 0;
};

// True if s is in the half-open window [lo, lo+len) modulo 2^32.
constexpr bool in_window(Seq32 s, Seq32 lo, std::uint32_t len) {
  return static_cast<std::uint32_t>(s - lo) < len;
}

}  // namespace rrtcp::tcp
