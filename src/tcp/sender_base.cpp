#include "tcp/sender_base.hpp"

#include <algorithm>

#include "env/sim_env.hpp"
#include "sim/assert.hpp"
#include "sim/log.hpp"

namespace rrtcp::tcp {

TcpSenderBase::TcpSenderBase(env::Environment& env, net::FlowId flow,
                             TcpConfig cfg)
    : env_{env},
      cfg_{cfg},
      flow_{flow},
      self_{env.local_id()},
      dst_{env.peer_id()},
      rto_{cfg},
      rto_timer_{env, [this] { on_retransmission_timeout(); }} {
  RRTCP_ASSERT(cfg_.mss > 0);
  RRTCP_ASSERT(cfg_.init_cwnd_pkts >= 1);
  RRTCP_ASSERT(cfg_.dupack_threshold >= 1);
  cwnd_ = cfg_.init_cwnd_pkts * cfg_.mss;
  ssthresh_ = cfg_.init_ssthresh_pkts * cfg_.mss;
  env_.attach(flow_, this);
}

TcpSenderBase::TcpSenderBase(std::unique_ptr<env::Environment> owned,
                             net::FlowId flow, TcpConfig cfg)
    : TcpSenderBase(*owned, flow, cfg) {
  owned_env_ = std::move(owned);
}

TcpSenderBase::TcpSenderBase(sim::Simulator& sim, net::Node& node,
                             net::FlowId flow, net::NodeId dst, TcpConfig cfg)
    : TcpSenderBase(std::make_unique<env::SimEnvironment>(sim, node, dst),
                    flow, cfg) {}

TcpSenderBase::~TcpSenderBase() { env_.detach(flow_); }

void TcpSenderBase::app_enqueue(std::uint64_t bytes) {
  RRTCP_ASSERT_MSG(app_total_.has_value(),
                   "app_enqueue on an unbounded sender");
  if (bytes == 0) return;
  *app_total_ += bytes;
  // transmit() re-arms the RTO timer when it is idle, so waking from an
  // empty-backlog lull needs no extra timer management here.
  if (started_) send_new_data();
}

void TcpSenderBase::start() {
  RRTCP_ASSERT_MSG(!started_, "sender started twice");
  started_ = true;
  start_time_ = env_.now();
  update_open_phase();
  send_new_data();
}

// ---------------------------------------------------------------------------
// Segmentation

std::uint32_t TcpSenderBase::segment_len_at(std::uint64_t seq) const {
  if (!app_total_) return cfg_.mss;
  RRTCP_ASSERT(seq < *app_total_);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg_.mss, *app_total_ - seq));
}

bool TcpSenderBase::app_data_available() const {
  return !app_total_ || snd_nxt_ < *app_total_;
}

std::uint64_t TcpSenderBase::effective_window() const {
  return std::min(cwnd_, max_window_bytes());
}

// ---------------------------------------------------------------------------
// Transmission

void TcpSenderBase::transmit(std::uint64_t seq, std::uint32_t len,
                             bool is_rtx) {
  RRTCP_ASSERT(len > 0);
  net::Packet p;
  p.uid = net::next_packet_uid();
  p.flow = flow_;
  p.src = self_;
  p.dst = dst_;
  p.type = net::PacketType::kData;
  p.size_bytes = cfg_.mss;  // fixed on-wire size, paper convention
  p.tcp.seq = seq;
  p.tcp.payload = len;
  p.tcp.ect = cfg_.ecn_enabled;
  if (cwr_pending_) {
    p.tcp.cwr = true;
    cwr_pending_ = false;
  }
  p.sent_at = env_.now();

  if (is_rtx) {
    ++stats_.retransmissions;
    // Karn's rule: a retransmission of (or overlapping) the timed segment
    // invalidates the measurement.
    if (timing_ && seq <= timed_seq_) timing_ = false;
  } else {
    ++stats_.data_packets_sent;
    if (!timing_) {
      timing_ = true;
      timed_seq_ = seq;
      timed_at_ = env_.now();
    }
  }

  if (!rto_timer_.pending()) restart_rto_timer();

  RRTCP_ENV_TRACE(env_, variant_name(), "flow=%u send seq=%llu len=%u rtx=%d",
                  flow_, static_cast<unsigned long long>(seq), len, is_rtx);
  notify_send(seq, len, is_rtx);
  env_.send(std::move(p));
}

bool TcpSenderBase::send_one_new_segment(bool ignore_rwnd) {
  if (!app_data_available()) return false;
  if (!ignore_rwnd && snd_nxt_ - snd_una_ >= max_window_bytes()) return false;
  const std::uint32_t len = segment_len_at(snd_nxt_);
  const bool is_rtx = snd_nxt_ < max_sent_;  // rolled back after a timeout
  transmit(snd_nxt_, len, is_rtx);
  snd_nxt_ += len;
  max_sent_ = std::max(max_sent_, snd_nxt_);
  return true;
}

int TcpSenderBase::send_new_data(int max_packets) {
  int sent = 0;
  while (sent < max_packets && app_data_available() &&
         flight_bytes() + segment_len_at(snd_nxt_) <= effective_window()) {
    if (!send_one_new_segment()) break;
    ++sent;
  }
  return sent;
}

void TcpSenderBase::retransmit(std::uint64_t seq) {
  RRTCP_ASSERT(seq >= snd_una_ && seq < max_sent_);
  transmit(seq, segment_len_at(seq), true);
}

// ---------------------------------------------------------------------------
// Window management

void TcpSenderBase::open_cwnd() {
  if (cwnd_ < ssthresh_) {
    if (cfg_.smooth_start && cwnd_ >= ssthresh_ / 2) {
      // Smooth-Start: halve the growth rate through the upper half of the
      // slow-start region (+1 MSS per two ACKs).
      smooth_pending_ = !smooth_pending_;
      if (smooth_pending_) return;
    }
    set_cwnd(cwnd_ + cfg_.mss);  // slow start: +1 MSS per ACK
  } else {
    // Congestion avoidance: +MSS per window's worth of ACKs.
    set_cwnd(cwnd_ + std::max<std::uint64_t>(
                         1, static_cast<std::uint64_t>(cfg_.mss) * cfg_.mss /
                                std::max<std::uint64_t>(cwnd_, 1)));
  }
  update_open_phase();
}

void TcpSenderBase::halve_ssthresh() {
  const std::uint64_t window = std::min(cwnd_, max_window_bytes());
  ssthresh_ = std::max<std::uint64_t>(2 * cfg_.mss, window / 2);
}

void TcpSenderBase::set_cwnd(std::uint64_t bytes) {
  cwnd_ = std::max<std::uint64_t>(bytes, cfg_.mss);
  for (auto* o : observers_) o->on_cwnd(env_.now(), cwnd_packets());
}

void TcpSenderBase::set_phase(TcpPhase p) {
  if (phase_ == p) return;
  phase_ = p;
  RRTCP_ENV_DEBUG(env_, variant_name(), "flow=%u phase -> %s", flow_,
                  to_string(p));
  for (auto* o : observers_) o->on_phase(env_.now(), p);
}

void TcpSenderBase::update_open_phase() {
  set_phase(cwnd_ < ssthresh_ ? TcpPhase::kSlowStart
                              : TcpPhase::kCongestionAvoidance);
}

// ---------------------------------------------------------------------------
// ACK processing

void TcpSenderBase::receive(net::Packet p) {
  RRTCP_ASSERT_MSG(p.is_ack(), "sender got a non-ACK packet");
  ++stats_.acks_received;
  const net::TcpHeader& h = p.tcp;

  if (cfg_.ecn_enabled && h.ece) handle_ecn_echo();

  if (h.ack > snd_una_) {
    const std::uint64_t newly = h.ack - snd_una_;
    stats_.bytes_acked += newly;
    maybe_sample_rtt(h.ack);
    snd_una_ = h.ack;
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    dupacks_ = 0;
    if (snd_una_ >= max_sent_ && !app_data_available()) {
      stop_rto_timer();
    } else {
      restart_rto_timer();
    }
    notify_ack(h.ack, false);
    handle_new_ack(h, newly);
    check_complete();
    notify_ack_processed(h.ack, false);
    return;
  }

  if (h.ack == snd_una_ && flight_bytes() > 0) {
    ++stats_.dupacks_received;
    ++dupacks_;
    notify_ack(h.ack, true);
    handle_dup_ack(h);
    notify_ack_processed(h.ack, true);
    return;
  }
  // Old ACK (below snd_una_): ignore.
}

void TcpSenderBase::handle_ecn_echo() {
  // RFC 3168: at most one window reduction per RTT, and none while a
  // loss-recovery episode is already shrinking the window.
  if (snd_una_ < ecn_cwr_point_) return;
  if (phase_ != TcpPhase::kSlowStart &&
      phase_ != TcpPhase::kCongestionAvoidance)
    return;
  ++stats_.ecn_reductions;
  halve_ssthresh();
  set_cwnd(ssthresh_);
  update_open_phase();
  ecn_cwr_point_ = snd_nxt_;
  cwr_pending_ = true;  // tell the receiver on the next data segment
  RRTCP_ENV_DEBUG(env_, variant_name(), "flow=%u ECN reduce, cwnd=%.1f",
                  flow_, cwnd_packets());
}

void TcpSenderBase::maybe_sample_rtt(std::uint64_t ack) {
  if (!timing_ || ack <= timed_seq_) return;
  timing_ = false;
  rto_.sample(env_.now() - timed_at_);
  ++stats_.rtt_samples;
}

void TcpSenderBase::check_complete() {
  if (!complete() || completed_at_ > sim::Time::zero()) return;
  completed_at_ = env_.now();
  stop_rto_timer();
  RRTCP_ENV_INFO(env_, variant_name(), "flow=%u transfer complete (%llu B)",
                 flow_, static_cast<unsigned long long>(*app_total_));
  if (complete_fn_) complete_fn_(completed_at_);
}

// ---------------------------------------------------------------------------
// Timeout

void TcpSenderBase::restart_rto_timer() { rto_timer_.schedule(rto_.rto()); }

void TcpSenderBase::stop_rto_timer() { rto_timer_.cancel(); }

void TcpSenderBase::on_retransmission_timeout() {
  if (snd_una_ >= max_sent_ && !app_data_available()) return;  // stale fire
  ++stats_.timeouts;
  for (auto* o : observers_) o->on_timeout(env_.now());
  RRTCP_ENV_DEBUG(env_, variant_name(), "flow=%u RTO (una=%llu)", flow_,
                  static_cast<unsigned long long>(snd_una_));

  rto_.backoff();
  halve_ssthresh();
  set_cwnd(cfg_.mss);
  dupacks_ = 0;
  timing_ = false;  // Karn: no sample across a timeout
  handle_timeout_cleanup();
  set_phase(TcpPhase::kRtoRecovery);

  // Go-back-N: resume from the lowest unACKed byte. The receiver holds any
  // delivered out-of-order data and re-ACKs duplicates, so correctness is
  // preserved; the cost (resending dormant data) is the classic one.
  snd_nxt_ = snd_una_;
  send_new_data();  // cwnd is 1 MSS: retransmits exactly the first segment
  restart_rto_timer();
}

// ---------------------------------------------------------------------------
// Observers

void TcpSenderBase::notify_send(std::uint64_t seq, std::uint32_t len,
                                bool rtx) {
  for (auto* o : observers_) o->on_send(env_.now(), seq, len, rtx);
}

void TcpSenderBase::notify_ack(std::uint64_t ack, bool dup) {
  for (auto* o : observers_) o->on_ack(env_.now(), ack, dup);
}

void TcpSenderBase::notify_ack_processed(std::uint64_t ack, bool dup) {
  for (auto* o : observers_) o->on_ack_processed(env_.now(), ack, dup);
}

}  // namespace rrtcp::tcp
