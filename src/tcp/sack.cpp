#include "tcp/sack.hpp"

#include <algorithm>

namespace rrtcp::tcp {

void SackSender::update_pipe() {
  pipe_ = board_.pipe_packets(snd_una(), max_sent(), cfg_.mss,
                              cfg_.dupack_threshold);
}

void SackSender::handle_new_ack(const net::TcpHeader& h,
                                std::uint64_t newly_acked) {
  board_.update(h, snd_una());
  if (in_recovery_) {
    if (h.ack >= recover_) {
      // Full ACK: recovery done.
      in_recovery_ = false;
      pipe_ = 0;
      board_.reset();
      set_cwnd(ssthresh_bytes());
      update_open_phase();
      send_new_data(cfg_.maxburst);
      return;
    }
    // Partial ACK: recompute the pipe from the scoreboard and keep
    // repairing.
    update_pipe();
    send_from_scoreboard();
    return;
  }
  (void)newly_acked;
  open_cwnd();
  send_new_data();
}

void SackSender::handle_dup_ack(const net::TcpHeader& h) {
  board_.update(h, snd_una());
  if (in_recovery_) {
    update_pipe();
    send_from_scoreboard();
    return;
  }
  if (dupacks() != cfg_.dupack_threshold) return;
  if (recover_valid_ && h.ack < recover_) return;
  enter_recovery();
}

void SackSender::enter_recovery() {
  count_fast_retransmit();
  recover_ = max_sent();
  recover_valid_ = true;
  halve_ssthresh();
  set_cwnd(ssthresh_bytes());
  in_recovery_ = true;
  set_phase(TcpPhase::kFastRecovery);
  // The first lost segment is retransmitted unconditionally (it is what
  // the three dup ACKs point at); pipe gating applies only afterwards.
  retransmit(snd_una());
  board_.mark_retransmitted(snd_una());
  update_pipe();
  send_from_scoreboard();
}

void SackSender::send_from_scoreboard() {
  // RFC 3517 transmission rules, in packets: while the pipe estimate is
  // below cwnd, send (1) holes the scoreboard deems lost, then (2) new
  // data, then (3) not-yet-lost holes below the SACK frontier as a lax
  // fallback; at most maxburst packets per incoming ACK.
  const long cwnd_pkts = static_cast<long>(cwnd_bytes() / cfg_.mss);
  int burst = 0;
  while (pipe_ < cwnd_pkts && burst < cfg_.maxburst) {
    if (auto hole = board_.next_hole(snd_una(), cfg_.mss,
                                     cfg_.dupack_threshold,
                                     /*require_lost=*/true)) {
      retransmit(*hole);
      board_.mark_retransmitted(*hole);
    } else if (app_data_available() &&
               flight_bytes() < max_window_bytes()) {
      if (!send_one_new_segment()) break;
    } else if (auto lax = board_.next_hole(snd_una(), cfg_.mss,
                                           cfg_.dupack_threshold,
                                           /*require_lost=*/false)) {
      retransmit(*lax);
      board_.mark_retransmitted(*lax);
    } else {
      break;
    }
    ++pipe_;
    ++burst;
  }
}

void SackSender::handle_timeout_cleanup() {
  in_recovery_ = false;
  pipe_ = 0;
  board_.reset();
  recover_ = max_sent();
  recover_valid_ = true;
}

}  // namespace rrtcp::tcp
