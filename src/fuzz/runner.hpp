// The oracle stack: run one CaseSpec and say everything that went wrong.
//
// A fuzz case has no expected output to diff against, so "wrong" is defined
// by oracles — properties every run must satisfy regardless of the sampled
// scenario:
//
//   kAudit        a recorded protocol-invariant violation (audit layer)
//   kWatchdog     a liveness report (stall / livelock / silent death)
//   kLiveness     a flow that ended the horizon incomplete with no RTO
//                 armed — dead by the chaos soak's definition
//   kDeterminism  the same case run twice produced different trace digests
//   kEquivalence  timer-wheel and heap-only scheduling produced different
//                 trace digests (DESIGN.md's engine-equivalence contract)
//   kShardEquivalence  the sharded PDES engine (pdes::ShardedScenario at
//                 the case's shard_count) crashed, failed to build, or —
//                 on the tie-safe multi-dumbbell topology — produced
//                 different per-flow digests than the single-engine run of
//                 the same spec (DESIGN.md §17's determinism contract)
//   kAbort        a trapped RRTCP_ASSERT / build-gated audit abort
//   kBuildReject  Scenario::validate refused the spec (generator bug —
//                 sampled specs are supposed to be valid by construction)
//
// run_case executes the case under an AssertTrapScope, so a would-be
// process abort surfaces as a kAbort failure with the invariant's ID —
// fuzzing continues, the case is triaged like any other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/case_spec.hpp"

namespace rrtcp::fuzz {

enum class OracleKind : std::uint8_t {
  kAudit,
  kWatchdog,
  kLiveness,
  kDeterminism,
  kEquivalence,
  kShardEquivalence,
  kAbort,
  kBuildReject,
  kCount,
};

const char* to_string(OracleKind k);

struct Failure {
  OracleKind kind = OracleKind::kAudit;
  // Stable machine ID within the oracle: invariant name ("RR_PROBE_CLOCK"),
  // watchdog report ("WD_LIVELOCK"), "DEAD_FLOW", "TRACE_DIGEST",
  // "ENGINE_DIGEST", a SpecError code, or a trapped abort's ID.
  std::string id;
  std::string detail;  // human context (times, sequence numbers)
};

struct RunOptions {
  // Re-run the case and require a byte-identical trace digest.
  bool check_determinism = true;
  // Run the case with the hierarchical timer wheel disabled and require
  // the same digest as the wheel-on run.
  bool check_equivalence = true;
  // When the case samples shard_count > 1 (and is not a mutant), run the
  // fault-free spec on the sharded PDES engine and on a single engine.
  // Both legs are crash/assert oracles; the per-flow digests must match on
  // multi-dumbbell cases (the tie-safe family — see runner.cpp).
  bool check_shard_equivalence = true;
};

struct RunOutcome {
  bool built = false;  // false => single kBuildReject (or kAbort) failure
  std::vector<Failure> failures;
  std::uint64_t digest = 0;  // trace digest of the primary run
  std::uint64_t events = 0;  // events executed in the primary run
};

RunOutcome run_case(const CaseSpec& cs, const RunOptions& opts = {});

// Stable triage key "oracle/ID/who", where `who` is the mutant name when
// set, else the variant — the unit of dedup, shrink-preservation, and
// corpus filenames. Two failures with the same bucket are the same bug.
std::string bucket_key(const CaseSpec& cs, const Failure& f);

}  // namespace rrtcp::fuzz
