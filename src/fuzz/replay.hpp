// One --replay entry point for fuzz repros AND chaos-soak schedules.
//
// Historically chaos_soak --replay took a plan seed and fuzz repros did
// not exist; now both CLIs (tools/fuzz_soak, examples/chaos_soak) route
// --replay=<operand> here:
//
//   all-integer operand ("291", "0x1a3")  -> chaos schedule seed, replayed
//     differentially across the soak's variant set (the historical path);
//   anything else                          -> path to a
//     rrtcp-fuzz-repro-v1 file: the case is rebuilt, the full oracle
//     stack runs, and the outcome is graded against the file's `expect`
//     lines.
//
// Exit codes: 0 = the replay behaved as expected (every expected bucket
// hit; or, for a file with no expect lines / a chaos seed, a clean run),
// 1 = it did not, 2 = the operand could not be loaded. The checked-in
// corpus runs under ctest with exactly these semantics: a repro that
// stops reproducing its bucket FAILS the test — a regression either way.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/chaos_sweep.hpp"

namespace rrtcp::fuzz {

struct ReplayArg {
  bool is_seed = false;
  std::uint64_t seed = 0;  // when is_seed
  std::string path;        // otherwise
};

// Integer operands (decimal, or hex with 0x/0X) classify as seeds;
// anything else is a file path.
ReplayArg classify_replay_arg(std::string_view arg);

// Replay one repro file against its expectations. Verbose: prints the
// case, every failure, and a final verdict line.
int replay_repro_file(const std::string& path);

// Replay one chaos schedule seed across `opts`'s variant set (verbose,
// per-variant verdicts). 0 iff every variant degraded gracefully.
int replay_chaos_seed(std::uint64_t plan_seed,
                      const harness::ChaosSoakOptions& opts);

// Dispatch on classify_replay_arg.
int replay_main(const std::string& arg,
                const harness::ChaosSoakOptions& chaos_opts = {});

}  // namespace rrtcp::fuzz
