#include "fuzz/mutants.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "core/rr_sender.hpp"
#include "net/packet.hpp"
#include "tcp/receiver.hpp"

namespace rrtcp::fuzz {

namespace {

// Bug: treats cwnd as the transmission controller during the probe
// sub-phase — each dup ACK bursts new data instead of releasing exactly
// one self-clocked packet (the over-count actnum exists to prevent).
// Expected catch: audit RR_PROBE_CLOCK.
class BrokenProbeSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;
  const char* variant_name() const override { return "broken-probe"; }

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    core::RrSender::handle_dup_ack(h);
    if (in_probe()) {
      send_one_new_segment(true);
      send_one_new_segment(true);
    }
  }
};

// Bug: never re-arms the retransmission timer — once the network eats the
// rest of a window, nothing is scheduled that could ever wake the flow.
// Expected catch: watchdog WD_SILENT_DEATH and audit RTO_ARMED.
class DeadRtoSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;
  const char* variant_name() const override { return "dead-rto"; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override {
    core::RrSender::handle_new_ack(h, newly_acked);
    stop_rto_timer();
  }
  void handle_dup_ack(const net::TcpHeader& h) override {
    core::RrSender::handle_dup_ack(h);
    stop_rto_timer();
  }
};

// Bug: retransmits the segment at snd_una on EVERY duplicate ACK with no
// exponential spacing — busy, but going nowhere while the hole persists.
// Expected catch: watchdog WD_LIVELOCK.
class LivelockRtxSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;
  const char* variant_name() const override { return "livelock-rtx"; }

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    core::RrSender::handle_dup_ack(h);
    if (snd_una() < max_sent()) retransmit(snd_una());
  }
};

using SenderMaker = std::unique_ptr<tcp::TcpSenderBase> (*)(
    sim::Simulator&, net::Node&, net::FlowId, net::NodeId,
    const tcp::TcpConfig&);

template <typename S>
std::unique_ptr<tcp::TcpSenderBase> make_sender(sim::Simulator& sim,
                                                net::Node& snd,
                                                net::FlowId flow,
                                                net::NodeId dst,
                                                const tcp::TcpConfig& cfg) {
  return std::make_unique<S>(sim, snd, flow, dst, cfg);
}

struct MutantEntry {
  std::string_view name;
  SenderMaker make;
};

// Sorted by name (mutant_names() promises stable order).
constexpr std::array<MutantEntry, 3> kMutants{{
    {"broken-probe", &make_sender<BrokenProbeSender>},
    {"dead-rto", &make_sender<DeadRtoSender>},
    {"livelock-rtx", &make_sender<LivelockRtxSender>},
}};

const MutantEntry* find(std::string_view name) {
  for (const MutantEntry& e : kMutants)
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace

std::vector<std::string_view> mutant_names() {
  std::vector<std::string_view> names;
  names.reserve(kMutants.size());
  for (const MutantEntry& e : kMutants) names.push_back(e.name);
  return names;
}

bool is_mutant(std::string_view name) { return find(name) != nullptr; }

std::function<app::Flow(sim::Simulator&, net::Node&, net::Node&, net::FlowId,
                        const harness::FlowSpec&)>
mutant_flow_maker(std::string_view name) {
  const MutantEntry* entry = find(name);
  if (entry == nullptr) return {};
  const SenderMaker make = entry->make;
  return [make](sim::Simulator& sim, net::Node& snd, net::Node& rcv,
                net::FlowId flow, const harness::FlowSpec& fs) {
    app::Flow f;
    f.sender = make(sim, snd, flow, rcv.id(), fs.tcp);
    tcp::ReceiverConfig rcfg;
    rcfg.ack_bytes = fs.tcp.ack_bytes;
    rcfg.ecn_enabled = fs.tcp.ecn_enabled;
    f.receiver =
        std::make_unique<tcp::TcpReceiver>(sim, rcv, flow, snd.id(), rcfg);
    return f;
  };
}

}  // namespace rrtcp::fuzz
