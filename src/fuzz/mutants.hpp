// Known-bug sender registry for the fuzz pipeline's self-tests.
//
// A fuzz campaign over CORRECT senders should end with zero oracle hits;
// proving the pipeline has teeth therefore needs senders that are wrong in
// known, specific ways. Each mutant here re-introduces one classic bug
// (the same families as tests/audit/broken_senders.hpp and
// tests/chaos/broken_liveness_senders.hpp) and is constructible BY NAME,
// so a minimized repro file that says `mutant = dead-rto` rebuilds the
// identical broken sender at replay time — the test-only headers cannot do
// that, which is why these live in src/.
//
// Name -> expected catch:
//   broken-probe  -> audit RR_PROBE_CLOCK (cwnd-burst during probe)
//   dead-rto      -> watchdog WD_SILENT_DEATH + audit RTO_ARMED
//   livelock-rtx  -> watchdog WD_LIVELOCK (per-dup-ACK retransmission)
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "app/flow_factory.hpp"
#include "harness/scenario.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::fuzz {

// Registered mutant names, sorted (stable for reports and tests).
std::vector<std::string_view> mutant_names();
bool is_mutant(std::string_view name);

// A ScenarioSpec::flow_maker that builds every flow from the named mutant
// (receiver wiring identical to app::make_flow). Null for unknown names.
std::function<app::Flow(sim::Simulator&, net::Node&, net::Node&,
                        net::FlowId, const harness::FlowSpec&)>
mutant_flow_maker(std::string_view name);

}  // namespace rrtcp::fuzz
