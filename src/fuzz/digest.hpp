// Trace digests: the currency of every equivalence oracle.
//
// TraceDigest is FNV-1a over an event stream; DigestObserver feeds it the
// sender-observer callbacks of one flow (event order is simulation order,
// values are exact integers — times in picoseconds, doubles by bit
// pattern), so equal digests mean equal traces for any deterministic
// engine. The fuzz runner hashes all flows into ONE digest (cross-flow
// interleaving is part of the single-engine determinism contract); the
// shard-equivalence oracle and the pdes tests hash PER FLOW, because the
// sharded engine guarantees each flow's trace, not the global interleave
// of independent flows that never exchange a packet.
#pragma once

#include <cstdint>
#include <cstring>

#include "sim/time.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::fuzz {

class TraceDigest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

class DigestObserver final : public tcp::SenderObserver {
 public:
  DigestObserver(TraceDigest& digest, int flow)
      : digest_{digest}, flow_{static_cast<std::uint64_t>(flow)} {}

  void on_send(sim::Time now, std::uint64_t seq, std::uint32_t len,
               bool rtx) override {
    mix_event(1, now);
    digest_.mix(seq);
    digest_.mix((static_cast<std::uint64_t>(len) << 1) | (rtx ? 1 : 0));
  }
  void on_ack(sim::Time now, std::uint64_t ack, bool dup) override {
    mix_event(2, now);
    digest_.mix((ack << 1) | (dup ? 1 : 0));
  }
  void on_phase(sim::Time now, tcp::TcpPhase phase) override {
    mix_event(3, now);
    digest_.mix(static_cast<std::uint64_t>(phase));
  }
  void on_timeout(sim::Time now) override { mix_event(4, now); }
  void on_cwnd(sim::Time now, double cwnd_packets) override {
    mix_event(5, now);
    std::uint64_t bits;
    std::memcpy(&bits, &cwnd_packets, sizeof bits);
    digest_.mix(bits);
  }

 private:
  void mix_event(std::uint64_t tag, sim::Time now) {
    digest_.mix((flow_ << 8) | tag);
    digest_.mix(static_cast<std::uint64_t>(now.ps()));
  }

  TraceDigest& digest_;
  std::uint64_t flow_;
};

}  // namespace rrtcp::fuzz
