// Delta-debugging shrinker: minimize a failing CaseSpec, keep the bug.
//
// "The bug" is a bucket key (runner.hpp): a candidate is accepted exactly
// when re-running it still produces a failure in the SAME bucket, so the
// minimized case provably fails the same way — not merely somehow. Passes
// remove fault events (greedy ddmin), collapse the topology to the
// dumbbell, cut flows and cross-traffic, revert RED to drop-tail, halve
// the transfer and the horizon, and zero the stagger; the pass list loops
// to a fixed point, so shrinking an already-minimal case changes nothing
// (the idempotence the corpus tests assert).
//
// Every candidate evaluation is one deterministic run_case, so the whole
// shrink is a pure function of (input spec, bucket, options) — replayable
// and thread-count independent.
#pragma once

#include <string>

#include "fuzz/case_spec.hpp"
#include "fuzz/runner.hpp"

namespace rrtcp::fuzz {

struct ShrinkOptions {
  // Cap on candidate evaluations (each is a full simulation; a shrink is
  // bounded work no matter how pathological the case).
  int max_attempts = 200;
};

struct ShrinkResult {
  CaseSpec spec;      // the minimized case (== input if nothing shrank)
  int attempts = 0;   // candidate runs evaluated
  int accepted = 0;   // candidates that kept the bucket and were taken
};

// Requires that `cs` actually hits `bucket` (the caller just observed it);
// if it does not reproduce, the input is returned unshrunk.
ShrinkResult shrink(const CaseSpec& cs, const std::string& bucket,
                    const ShrinkOptions& opts = {});

}  // namespace rrtcp::fuzz
