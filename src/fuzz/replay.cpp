#include "fuzz/replay.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "fuzz/runner.hpp"
#include "fuzz/serialize.hpp"

namespace rrtcp::fuzz {

ReplayArg classify_replay_arg(std::string_view arg) {
  ReplayArg out;
  out.path = std::string{arg};
  if (arg.empty()) return out;
  std::string_view digits = arg;
  bool hex = false;
  if (digits.size() > 2 && (digits.substr(0, 2) == "0x" ||
                            digits.substr(0, 2) == "0X")) {
    hex = true;
    digits.remove_prefix(2);
  }
  if (digits.empty()) return out;
  for (const char c : digits) {
    const bool dec = c >= '0' && c <= '9';
    const bool hexdig =
        dec || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
    if (!(hex ? hexdig : dec)) return out;
  }
  out.is_seed = true;
  out.seed = std::strtoull(std::string{arg}.c_str(), nullptr, 0);
  return out;
}

int replay_repro_file(const std::string& path) {
  ReplayCase rc;
  std::string error;
  if (!load_replay_file(path, &rc, &error)) {
    std::fprintf(stderr, "replay: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }

  const CaseSpec& cs = rc.spec;
  std::printf("replaying %s\n", path.c_str());
  std::printf(
      "  case: seed=%" PRIu64 " who=%s topo=%s flows=%d faults=%zu "
      "horizon=%.1fs\n",
      cs.seed, cs.mutant.empty() ? app::to_string(cs.variant)
                                 : cs.mutant.c_str(),
      to_string(cs.topo), cs.n_flows, cs.plan.faults.size(),
      cs.horizon.to_seconds());

  const RunOutcome out = run_case(cs);
  std::set<std::string> hit;
  for (const Failure& f : out.failures) {
    hit.insert(bucket_key(cs, f));
    std::printf("  %s/%s: %s\n", to_string(f.kind), f.id.c_str(),
                f.detail.c_str());
  }

  int missing = 0;
  for (const std::string& want : rc.expect) {
    if (hit.count(want) != 0) continue;
    ++missing;
    std::printf("  MISSING expected bucket %s\n", want.c_str());
  }
  if (!rc.expect.empty()) {
    const bool ok = missing == 0;
    std::printf("verdict: %s (%zu/%zu expected bucket(s) hit, %zu total)\n",
                ok ? "REPRODUCED" : "NOT REPRODUCED",
                rc.expect.size() - static_cast<std::size_t>(missing),
                rc.expect.size(), hit.size());
    return ok ? 0 : 1;
  }
  const bool clean = out.failures.empty();
  std::printf("verdict: %s (no expectations; %zu failure(s))\n",
              clean ? "CLEAN" : "FAILED", out.failures.size());
  return clean ? 0 : 1;
}

int replay_chaos_seed(std::uint64_t plan_seed,
                      const harness::ChaosSoakOptions& opts) {
  const chaos::FaultPlan plan =
      chaos::make_random_plan(plan_seed, opts.bounds);
  std::printf("replaying chaos plan seed 0x%016" PRIx64 ": %s\n", plan_seed,
              plan.describe().c_str());
  int failures = 0;
  for (const app::Variant v : opts.variants) {
    harness::ChaosRunConfig cfg = opts.base;
    cfg.variant = v;
    std::vector<chaos::WatchdogReport> reports;
    std::vector<audit::Violation> violations;
    const harness::ChaosRunOutcome out = harness::run_chaos_schedule(
        plan, plan_seed, cfg, &reports, &violations);
    std::printf(
        "  %-8s %s: complete=%d alive=%d dead=%d timeouts=%" PRIu64
        " rtx=%" PRIu64 " drops=%" PRIu64 " violations=%" PRIu64
        " watchdog=%" PRIu64 "\n",
        app::to_string(v), out.graceful ? "GRACEFUL" : "FAILED",
        out.flows_complete, out.flows_alive, out.flows_dead, out.timeouts,
        out.retransmissions, out.fault_drops, out.audit_violations,
        out.watchdog_reports);
    for (const audit::Violation& viol : violations)
      std::printf("    audit %s t=%.6fs: %s\n", audit::to_string(viol.id),
                  viol.t.to_seconds(), viol.detail.c_str());
    for (const chaos::WatchdogReport& r : reports)
      std::printf("    %s t=%.6fs %s: %s\n", chaos::to_string(r.id),
                  r.t.to_seconds(), r.who.c_str(), r.detail.c_str());
    if (!out.graceful) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

int replay_main(const std::string& arg,
                const harness::ChaosSoakOptions& chaos_opts) {
  const ReplayArg parsed = classify_replay_arg(arg);
  if (parsed.is_seed) return replay_chaos_seed(parsed.seed, chaos_opts);
  return replay_repro_file(parsed.path);
}

}  // namespace rrtcp::fuzz
