#include "fuzz/spec_gen.hpp"

#include <algorithm>

#include "harness/sweep.hpp"
#include "sim/rng.hpp"

namespace rrtcp::fuzz {

namespace {

sim::Time uniform_time(sim::Rng& rng, sim::Time lo, sim::Time hi) {
  return sim::Time::picoseconds(static_cast<std::int64_t>(rng.uniform_int(
      static_cast<std::uint64_t>(lo.ps()), static_cast<std::uint64_t>(hi.ps()))));
}

double uniform_range(sim::Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.uniform01();
}

}  // namespace

CaseSpec SpecGenerator::generate(std::uint64_t index) const {
  CaseSpec cs;
  cs.seed = harness::derive_seed(master_seed_, index);
  sim::Rng rng{cs.seed, "fuzz-gen"};

  cs.variant = app::kAllVariants[rng.uniform_int(
      0, std::size(app::kAllVariants) - 1)];
  cs.topo = static_cast<TopoKind>(
      rng.uniform_int(0, static_cast<std::uint64_t>(TopoKind::kCount) - 1));

  cs.bottleneck_bps =
      static_cast<std::int64_t>(rng.uniform_int(300'000, 2'000'000));
  cs.bottleneck_delay = uniform_time(rng, sim::Time::milliseconds(10),
                                     sim::Time::milliseconds(120));
  cs.queue_packets = rng.uniform_int(4, 32);
  // RED only on the dumbbell: multi-hop presets build their queues inside
  // the GraphSpec, and a shared drop-RNG across hops would correlate drops.
  if (cs.topo == TopoKind::kDumbbell && rng.bernoulli(0.3)) {
    cs.queue = QueueKind::kRed;
    cs.red_min_th = uniform_range(rng, 3.0, 8.0);
    cs.red_max_th = cs.red_min_th + uniform_range(rng, 8.0, 18.0);
    cs.red_max_p = uniform_range(rng, 0.01, 0.1);
    cs.queue_packets =
        std::max<std::uint64_t>(cs.queue_packets,
                                static_cast<std::uint64_t>(cs.red_max_th) + 5);
  }

  cs.hops = static_cast<int>(rng.uniform_int(2, 4));
  cs.extra_receivers = static_cast<int>(rng.uniform_int(1, 3));
  cs.mesh_routers = static_cast<int>(rng.uniform_int(3, 6));
  cs.mesh_chords = static_cast<int>(rng.uniform_int(0, 2));

  cs.n_flows = static_cast<int>(rng.uniform_int(1, 3));
  cs.bytes_per_flow = rng.uniform_int(20'000, 100'000);
  cs.stagger = uniform_time(rng, sim::Time::zero(),
                            sim::Time::milliseconds(500));
  cs.smooth_start = rng.bernoulli(0.5);
  if (cs.topo == TopoKind::kDumbbell && rng.bernoulli(0.3)) {
    cs.n_cbr = static_cast<int>(rng.uniform_int(1, 2));
    cs.cbr_load = uniform_range(rng, 0.05, 0.25);
  }

  // Shard count comes from its OWN named stream, not `rng`: adding the
  // sharded engine must not shift any draw existing cases (and the
  // committed corpus expectations) were generated from. Graph-mode
  // topologies only — the dumbbell always delegates to the single engine,
  // so a shard_count there would buy two no-op runs per case.
  if (cs.topo != TopoKind::kDumbbell) {
    sim::Rng shard_rng{cs.seed, "fuzz-gen-shard"};
    static constexpr int kShardChoices[] = {1, 1, 2, 4};
    cs.shard_count = kShardChoices[shard_rng.uniform_int(
        0, std::size(kShardChoices) - 1)];
  }

  cs.wd_check_interval = uniform_time(rng, sim::Time::milliseconds(200),
                                      sim::Time::milliseconds(800));
  if (rng.bernoulli(0.5))
    cs.wd_stall_ceiling = uniform_time(rng, sim::Time::seconds(25.0),
                                       sim::Time::seconds(45.0));

  // The default PlanBounds are the chaos soak's hostile-but-survivable
  // envelope: windows end by ~35 s. Size the horizon as a serialized-
  // transfer estimate with generous slack plus that fault allowance, so a
  // healthy sender that loses whole windows still has room to finish.
  if (rng.bernoulli(0.8))
    cs.plan = chaos::make_random_plan(harness::derive_seed(cs.seed, 1));
  const double transfer_s =
      static_cast<double>(cs.bytes_per_flow) * 8.0 *
      static_cast<double>(cs.n_flows) /
      static_cast<double>(cs.bottleneck_bps);
  const double fault_allowance_s = cs.plan.empty() ? 10.0 : 35.0;
  cs.horizon = sim::Time::seconds(
      std::clamp(transfer_s * 4.0 + fault_allowance_s + 15.0, 60.0, 150.0));
  return cs;
}

}  // namespace rrtcp::fuzz
