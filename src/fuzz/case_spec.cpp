#include "fuzz/case_spec.hpp"

#include <algorithm>
#include <utility>

#include "fuzz/mutants.hpp"
#include "sim/assert.hpp"
#include "topo/presets.hpp"

namespace rrtcp::fuzz {

namespace {

constexpr std::int64_t kAccessBps = 10'000'000;
constexpr std::uint64_t kAccessQueuePackets = 10'000;

harness::QueueSpec queue_spec(const CaseSpec& cs) {
  if (cs.queue == QueueKind::kRed) {
    net::RedConfig red;
    red.buffer_packets = cs.queue_packets;
    red.min_th = cs.red_min_th;
    red.max_th = cs.red_max_th;
    red.max_p = cs.red_max_p;
    return harness::QueueSpec::red_queue(red);
  }
  return harness::QueueSpec::drop_tail(cs.queue_packets);
}

harness::FlowSpec base_flow(const CaseSpec& cs) {
  harness::FlowSpec fs;
  fs.variant = cs.variant;
  fs.bytes = cs.bytes_per_flow;
  fs.tcp.smooth_start = cs.smooth_start;
  return fs;
}

void materialize_dumbbell(const CaseSpec& cs, harness::ScenarioSpec* spec,
                          InjectionPoints* points) {
  spec->topology.bottleneck_bps = cs.bottleneck_bps;
  spec->topology.bottleneck_delay = cs.bottleneck_delay;
  spec->bottleneck = queue_spec(cs);
  spec->add_flows(cs.n_flows, base_flow(cs), cs.stagger);
  for (int i = 0; i < cs.n_cbr; ++i) {
    harness::CbrSpec cbr;
    cbr.load_fraction = cs.cbr_load;
    spec->add_cbr(cbr);
  }
  if (points != nullptr) {
    // Node-id layout of net::DumbbellTopology: R1 = 0, R2 = 1; the forward
    // bottleneck is link 0, the reverse link 1 — same split the chaos soak
    // uses.
    *points = {.data_node = 0, .data_link = 0, .ack_node = 1, .ack_link = 1};
  }
}

void materialize_parking_lot(const CaseSpec& cs, harness::ScenarioSpec* spec,
                             InjectionPoints* points) {
  topo::ParkingLotConfig plc;
  plc.n_bottlenecks = std::max(1, cs.hops);
  plc.bottleneck_bps = cs.bottleneck_bps;
  plc.hop_delay = cs.bottleneck_delay;
  plc.queue_packets = cs.queue_packets;
  const topo::ParkingLotLayout lot = topo::parking_lot(plc);

  spec->graph = lot.spec;
  spec->audited_links = lot.bottleneck_links;

  // Flow 0 runs the full chain; the rest are the per-hop cross flows,
  // round-robin over the bottlenecks. Starts staggered as in add_flows.
  harness::FlowSpec f = base_flow(cs);
  const int hops = static_cast<int>(lot.cross_src.size());
  for (int i = 0; i < cs.n_flows; ++i) {
    f.start = cs.stagger * i;
    if (i == 0) {
      f.src_node = lot.long_src;
      f.dst_node = lot.long_dst;
    } else {
      const std::size_t h = static_cast<std::size_t>((i - 1) % hops);
      f.src_node = lot.cross_src[h];
      f.dst_node = lot.cross_dst[h];
    }
    spec->add_flow(f);
  }
  if (points != nullptr) {
    // presets.cpp interleaves forward/reverse core links: the reverse of
    // bottleneck_links[i] is bottleneck_links[i] + 1.
    *points = {.data_node = lot.routers.front(),
               .data_link = lot.bottleneck_links.front(),
               .ack_node = lot.routers.at(1),
               .ack_link = lot.bottleneck_links.front() + 1};
  }
}

void materialize_multi_dumbbell(const CaseSpec& cs,
                                harness::ScenarioSpec* spec,
                                InjectionPoints* points) {
  topo::MultiDumbbellConfig mdc;
  mdc.n_senders = cs.n_flows;
  mdc.m_receivers = std::max(1, cs.extra_receivers);
  mdc.bottleneck_bps = cs.bottleneck_bps;
  mdc.bottleneck_delay = cs.bottleneck_delay;
  mdc.queue_packets = cs.queue_packets;
  const topo::MultiDumbbellLayout md = topo::multi_dumbbell(mdc);

  spec->graph = md.spec;
  spec->audited_links = {md.bottleneck_link};

  harness::FlowSpec f = base_flow(cs);
  const std::size_t m = md.receivers.size();
  for (int i = 0; i < cs.n_flows; ++i) {
    f.start = cs.stagger * i;
    f.src_node = md.senders.at(static_cast<std::size_t>(i));
    f.dst_node = md.receivers[static_cast<std::size_t>(i) % m];
    spec->add_flow(f);
  }
  if (points != nullptr) {
    *points = {.data_node = md.r1,
               .data_link = md.bottleneck_link,
               .ack_node = md.r2,
               .ack_link = md.reverse_bottleneck_link};
  }
}

// Ring of R routers with slow core links (the shared resource) plus
// `mesh_chords` deterministic chord duplexes; each flow gets its own host
// pair hung off routers half a ring apart, over fast access links. The
// injectors sit on flow 0's access uplinks — the one place guaranteed to
// be on that flow's data (resp. ACK) path whatever route the core picks.
void materialize_mesh(const CaseSpec& cs, harness::ScenarioSpec* spec,
                      InjectionPoints* points) {
  topo::GraphSpec g;
  const int R = std::max(2, cs.mesh_routers);
  for (int i = 0; i < R; ++i) g.add_node("R" + std::to_string(i));

  const int n_ring = R == 2 ? 1 : R;  // avoid a doubled duplex on a 2-ring
  for (int i = 0; i < n_ring; ++i) {
    const int core = g.add_duplex(i, (i + 1) % R, cs.bottleneck_bps,
                                  cs.bottleneck_delay, cs.queue_packets);
    spec->audited_links.push_back(core);
    spec->audited_links.push_back(core + 1);
  }
  for (int j = 0; j < cs.mesh_chords; ++j) {
    const int a = j % R;
    const int b = (a + 2) % R;
    if (b == a) continue;
    const int core = g.add_duplex(a, b, cs.bottleneck_bps,
                                  cs.bottleneck_delay, cs.queue_packets);
    spec->audited_links.push_back(core);
    spec->audited_links.push_back(core + 1);
  }

  harness::FlowSpec f = base_flow(cs);
  for (int i = 0; i < cs.n_flows; ++i) {
    const int src_router = i % R;
    const int dst_router = (i + R / 2) % R;
    const int src = g.add_node("S" + std::to_string(i));
    const int dst = g.add_node("K" + std::to_string(i));
    const int src_up = g.add_duplex(src, src_router, kAccessBps,
                                    sim::Time::zero(), kAccessQueuePackets);
    const int dst_up = g.add_duplex(dst, dst_router, kAccessBps,
                                    sim::Time::zero(), kAccessQueuePackets);
    if (i == 0 && points != nullptr) {
      *points = {.data_node = src,
                 .data_link = src_up,
                 .ack_node = dst,
                 .ack_link = dst_up};
    }
    f.start = cs.stagger * i;
    f.src_node = src;
    f.dst_node = dst;
    spec->add_flow(f);
  }
  spec->graph = std::move(g);
}

}  // namespace

const char* to_string(TopoKind k) {
  switch (k) {
    case TopoKind::kDumbbell:
      return "dumbbell";
    case TopoKind::kParkingLot:
      return "parking-lot";
    case TopoKind::kMultiDumbbell:
      return "multi-dumbbell";
    case TopoKind::kRandomMesh:
      return "random-mesh";
    case TopoKind::kCount:
      break;
  }
  return "?";
}

bool topo_kind_from_string(std::string_view name, TopoKind* out) {
  for (int i = 0; i < static_cast<int>(TopoKind::kCount); ++i) {
    const TopoKind k = static_cast<TopoKind>(i);
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

const char* to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kDropTail:
      return "droptail";
    case QueueKind::kRed:
      return "red";
    case QueueKind::kCount:
      break;
  }
  return "?";
}

bool queue_kind_from_string(std::string_view name, QueueKind* out) {
  for (int i = 0; i < static_cast<int>(QueueKind::kCount); ++i) {
    const QueueKind k = static_cast<QueueKind>(i);
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

harness::ScenarioSpec materialize(const CaseSpec& cs,
                                  InjectionPoints* points) {
  harness::ScenarioSpec spec;
  spec.name = "fuzz";
  spec.seed = cs.seed;
  spec.horizon = cs.horizon;
  spec.shard_count = cs.shard_count;
  spec.instruments.tracers = false;
  spec.instruments.audit = harness::AuditMode::kRecord;
  spec.instruments.watchdog = true;
  spec.instruments.watchdog_config.check_interval = cs.wd_check_interval;
  spec.instruments.watchdog_config.stall_rto_factor = cs.wd_stall_rto_factor;
  spec.instruments.watchdog_config.livelock_rtx_threshold = cs.wd_livelock_rtx;
  spec.instruments.watchdog_config.stall_ceiling = cs.wd_stall_ceiling;

  switch (cs.topo) {
    case TopoKind::kDumbbell:
      materialize_dumbbell(cs, &spec, points);
      break;
    case TopoKind::kParkingLot:
      materialize_parking_lot(cs, &spec, points);
      break;
    case TopoKind::kMultiDumbbell:
      materialize_multi_dumbbell(cs, &spec, points);
      break;
    case TopoKind::kRandomMesh:
      materialize_mesh(cs, &spec, points);
      break;
    case TopoKind::kCount:
      RRTCP_ASSERT_MSG(false, "invalid TopoKind");
      break;
  }
  return spec;
}

std::unique_ptr<BuiltCase> build_case(const CaseSpec& cs,
                                      harness::SpecError* err,
                                      bool timer_wheel) {
  InjectionPoints points;
  harness::ScenarioSpec spec = materialize(cs, &points);
  spec.timer_wheel = timer_wheel;
  if (!cs.mutant.empty()) {
    spec.flow_maker = mutant_flow_maker(cs.mutant);
    RRTCP_ASSERT_MSG(spec.flow_maker != nullptr, "unknown mutant name");
  }

  auto built = std::make_unique<BuiltCase>();
  built->scenario = harness::Scenario::try_build(std::move(spec), err);
  if (built->scenario == nullptr) return nullptr;

  // Interpose the two injectors exactly as the chaos soak does on its
  // dumbbell: the plan's kData subset at the data-path point, its kAck
  // subset at the ACK-path point. Both are installed even for an empty
  // plan — a pass-through injector forwards synchronously, so the trace is
  // unchanged and every case tears down identically.
  topo::TopologyGraph& graph = built->scenario->graph();
  sim::Simulator& sim = built->scenario->sim();
  built->data_injector = std::make_unique<chaos::FaultInjector>(
      sim, graph.link(points.data_link), cs.plan.subset(chaos::FaultPath::kData),
      cs.seed, "fuzz-data");
  chaos::interpose(graph.node(points.data_node), graph.link(points.data_link),
                   *built->data_injector);
  built->ack_injector = std::make_unique<chaos::FaultInjector>(
      sim, graph.link(points.ack_link), cs.plan.subset(chaos::FaultPath::kAck),
      cs.seed, "fuzz-ack");
  chaos::interpose(graph.node(points.ack_node), graph.link(points.ack_link),
                   *built->ack_injector);
  return built;
}

}  // namespace rrtcp::fuzz
