#include "fuzz/serialize.hpp"

#include <cinttypes>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "fuzz/mutants.hpp"

namespace rrtcp::fuzz {

namespace {

void emit(std::string* out, const char* key, const char* fmt, ...) {
  char line[352];
  int n = std::snprintf(line, sizeof line, "%s = ", key);
  std::va_list ap;
  va_start(ap, fmt);
  n += std::vsnprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                      fmt, ap);
  va_end(ap);
  out->append(line, static_cast<std::size_t>(n));
  out->push_back('\n');
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

bool parse_i64(std::string_view v, std::int64_t* out) {
  const std::string tmp{v};
  char* end = nullptr;
  const long long r = std::strtoll(tmp.c_str(), &end, 10);
  if (end == tmp.c_str() || *end != '\0') return false;
  *out = r;
  return true;
}

bool parse_u64(std::string_view v, std::uint64_t* out) {
  const std::string tmp{v};
  char* end = nullptr;
  const unsigned long long r = std::strtoull(tmp.c_str(), &end, 10);
  if (end == tmp.c_str() || *end != '\0') return false;
  *out = r;
  return true;
}

bool parse_int(std::string_view v, int* out) {
  std::int64_t r;
  if (!parse_i64(v, &r) || r < INT_MIN || r > INT_MAX) return false;
  *out = static_cast<int>(r);
  return true;
}

bool parse_double(std::string_view v, double* out) {
  const std::string tmp{v};
  char* end = nullptr;
  const double r = std::strtod(tmp.c_str(), &end);
  if (end == tmp.c_str() || *end != '\0') return false;
  *out = r;
  return true;
}

bool parse_time(std::string_view v, sim::Time* out) {
  std::int64_t ps;
  if (!parse_i64(v, &ps)) return false;
  *out = sim::Time::picoseconds(ps);
  return true;
}

bool parse_bool(std::string_view v, bool* out) {
  if (v == "0") {
    *out = false;
    return true;
  }
  if (v == "1") {
    *out = true;
    return true;
  }
  return false;
}

bool fail(std::string* error, int line_no, const std::string& what) {
  if (error != nullptr) {
    std::ostringstream os;
    os << "line " << line_no << ": " << what;
    *error = os.str();
  }
  return false;
}

}  // namespace

std::string to_replay_text(const CaseSpec& cs,
                           const std::vector<std::string>& expect) {
  std::string out;
  out += "format = ";
  out += kReplayFormat;
  out += '\n';
  emit(&out, "seed", "%" PRIu64, cs.seed);
  emit(&out, "variant", "%s", app::to_string(cs.variant));
  if (!cs.mutant.empty()) emit(&out, "mutant", "%s", cs.mutant.c_str());
  emit(&out, "topo", "%s", to_string(cs.topo));
  emit(&out, "hops", "%d", cs.hops);
  emit(&out, "extra_receivers", "%d", cs.extra_receivers);
  emit(&out, "mesh_routers", "%d", cs.mesh_routers);
  emit(&out, "mesh_chords", "%d", cs.mesh_chords);
  emit(&out, "bottleneck_bps", "%" PRId64, cs.bottleneck_bps);
  emit(&out, "bottleneck_delay_ps", "%" PRId64, cs.bottleneck_delay.ps());
  emit(&out, "queue", "%s", to_string(cs.queue));
  emit(&out, "queue_packets", "%" PRIu64, cs.queue_packets);
  emit(&out, "red_min_th", "%.17g", cs.red_min_th);
  emit(&out, "red_max_th", "%.17g", cs.red_max_th);
  emit(&out, "red_max_p", "%.17g", cs.red_max_p);
  emit(&out, "n_flows", "%d", cs.n_flows);
  emit(&out, "bytes_per_flow", "%" PRIu64, cs.bytes_per_flow);
  emit(&out, "stagger_ps", "%" PRId64, cs.stagger.ps());
  emit(&out, "smooth_start", "%d", cs.smooth_start ? 1 : 0);
  emit(&out, "n_cbr", "%d", cs.n_cbr);
  emit(&out, "cbr_load", "%.17g", cs.cbr_load);
  emit(&out, "horizon_ps", "%" PRId64, cs.horizon.ps());
  // Emitted only when set: files from before the sharded engine stay
  // byte-identical through a save/load round trip.
  if (cs.shard_count != 1) emit(&out, "shard_count", "%d", cs.shard_count);
  emit(&out, "wd_check_interval_ps", "%" PRId64, cs.wd_check_interval.ps());
  emit(&out, "wd_stall_rto_factor", "%d", cs.wd_stall_rto_factor);
  emit(&out, "wd_livelock_rtx", "%d", cs.wd_livelock_rtx);
  if (cs.wd_stall_ceiling)
    emit(&out, "wd_stall_ceiling_ps", "%" PRId64, cs.wd_stall_ceiling->ps());
  for (const chaos::FaultSpec& f : cs.plan.faults)
    emit(&out, "fault", "%s", f.to_text().c_str());
  for (const std::string& e : expect) emit(&out, "expect", "%s", e.c_str());
  return out;
}

bool parse_replay_text(std::string_view text, ReplayCase* out,
                       std::string* error) {
  ReplayCase rc;
  bool saw_format = false;
  int line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      return fail(error, line_no, "expected 'key = value'");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    if (!saw_format) {
      if (key != "format")
        return fail(error, line_no, "first entry must be 'format'");
      if (value != kReplayFormat)
        return fail(error, line_no,
                    "unsupported format '" + std::string{value} + "'");
      saw_format = true;
      continue;
    }

    CaseSpec& cs = rc.spec;
    bool ok = true;
    if (key == "seed") {
      ok = parse_u64(value, &cs.seed);
    } else if (key == "variant") {
      try {
        cs.variant = app::variant_from_string(value);
      } catch (const std::exception&) {
        ok = false;
      }
    } else if (key == "mutant") {
      if (!is_mutant(value))
        return fail(error, line_no,
                    "unknown mutant '" + std::string{value} + "'");
      cs.mutant = std::string{value};
    } else if (key == "topo") {
      ok = topo_kind_from_string(value, &cs.topo);
    } else if (key == "hops") {
      ok = parse_int(value, &cs.hops);
    } else if (key == "extra_receivers") {
      ok = parse_int(value, &cs.extra_receivers);
    } else if (key == "mesh_routers") {
      ok = parse_int(value, &cs.mesh_routers);
    } else if (key == "mesh_chords") {
      ok = parse_int(value, &cs.mesh_chords);
    } else if (key == "bottleneck_bps") {
      ok = parse_i64(value, &cs.bottleneck_bps);
    } else if (key == "bottleneck_delay_ps") {
      ok = parse_time(value, &cs.bottleneck_delay);
    } else if (key == "queue") {
      ok = queue_kind_from_string(value, &cs.queue);
    } else if (key == "queue_packets") {
      ok = parse_u64(value, &cs.queue_packets);
    } else if (key == "red_min_th") {
      ok = parse_double(value, &cs.red_min_th);
    } else if (key == "red_max_th") {
      ok = parse_double(value, &cs.red_max_th);
    } else if (key == "red_max_p") {
      ok = parse_double(value, &cs.red_max_p);
    } else if (key == "n_flows") {
      ok = parse_int(value, &cs.n_flows);
    } else if (key == "bytes_per_flow") {
      ok = parse_u64(value, &cs.bytes_per_flow);
    } else if (key == "stagger_ps") {
      ok = parse_time(value, &cs.stagger);
    } else if (key == "smooth_start") {
      ok = parse_bool(value, &cs.smooth_start);
    } else if (key == "n_cbr") {
      ok = parse_int(value, &cs.n_cbr);
    } else if (key == "cbr_load") {
      ok = parse_double(value, &cs.cbr_load);
    } else if (key == "horizon_ps") {
      ok = parse_time(value, &cs.horizon);
    } else if (key == "shard_count") {
      ok = parse_int(value, &cs.shard_count);
    } else if (key == "wd_check_interval_ps") {
      ok = parse_time(value, &cs.wd_check_interval);
    } else if (key == "wd_stall_rto_factor") {
      ok = parse_int(value, &cs.wd_stall_rto_factor);
    } else if (key == "wd_livelock_rtx") {
      ok = parse_int(value, &cs.wd_livelock_rtx);
    } else if (key == "wd_stall_ceiling_ps") {
      sim::Time t;
      ok = parse_time(value, &t);
      if (ok) cs.wd_stall_ceiling = t;
    } else if (key == "fault") {
      chaos::FaultSpec f;
      if (!chaos::FaultSpec::from_text(value, &f))
        return fail(error, line_no, "malformed fault spec");
      cs.plan.faults.push_back(f);
    } else if (key == "expect") {
      rc.expect.emplace_back(value);
    } else {
      return fail(error, line_no, "unknown key '" + std::string{key} + "'");
    }
    if (!ok)
      return fail(error, line_no,
                  "bad value for '" + std::string{key} + "'");
  }
  if (!saw_format) return fail(error, 0, "missing 'format' line");
  *out = std::move(rc);
  return true;
}

bool load_replay_file(const std::string& path, ReplayCase* out,
                      std::string* error) {
  std::ifstream in{path};
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_replay_text(buf.str(), out, error);
}

bool write_replay_file(const std::string& path, const CaseSpec& cs,
                       const std::vector<std::string>& expect) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << to_replay_text(cs, expect);
  return static_cast<bool>(out);
}

}  // namespace rrtcp::fuzz
