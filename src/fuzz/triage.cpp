#include "fuzz/triage.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "fuzz/serialize.hpp"

namespace rrtcp::fuzz {

bool FailureTriage::record(const CaseSpec& cs, const Failure& f,
                           std::uint64_t index) {
  ++total_hits_;
  const std::string key = bucket_key(cs, f);
  auto [it, inserted] = buckets_.try_emplace(key);
  TriagedFailure& t = it->second;
  ++t.hits;
  if (!inserted) return false;
  t.bucket = key;
  t.exemplar = f;
  t.first_index = index;
  t.repro = cs;
  return true;
}

void FailureTriage::attach_minimized(const std::string& bucket,
                                     const ShrinkResult& r) {
  const auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return;
  it->second.repro = r.spec;
  it->second.minimized = true;
  it->second.shrink_attempts = r.attempts;
  it->second.shrink_accepted = r.accepted;
}

std::string FailureTriage::report() const {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof line, "%zu bucket(s), %" PRIu64 " failure(s)\n",
                buckets_.size(), total_hits_);
  out += line;
  for (const auto& [key, t] : buckets_) {
    std::snprintf(line, sizeof line,
                  "bucket %s: hits=%" PRIu64 " first_index=%" PRIu64
                  " repro{faults=%zu flows=%d topo=%s}%s\n",
                  key.c_str(), t.hits, t.first_index, t.repro.plan.faults.size(),
                  t.repro.n_flows, to_string(t.repro.topo),
                  t.minimized ? " minimized" : "");
    out += line;
    std::snprintf(line, sizeof line, "  %s\n", t.exemplar.detail.c_str());
    out += line;
  }
  return out;
}

int FailureTriage::write_corpus(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return -1;
  int written = 0;
  for (const auto& [key, t] : buckets_) {
    const std::string path = dir + "/" + sanitize(key) + ".repro";
    if (!write_replay_file(path, t.repro, {key})) return -1;
    ++written;
  }
  return written;
}

std::string FailureTriage::sanitize(const std::string& bucket) {
  std::string name = bucket;
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) c = '-';
  }
  return name;
}

}  // namespace rrtcp::fuzz
