#include "fuzz/runner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <utility>

#include "audit/invariant_auditor.hpp"
#include "chaos/watchdog.hpp"
#include "fuzz/digest.hpp"
#include "pdes/sharded.hpp"
#include "sim/assert.hpp"

namespace rrtcp::fuzz {

namespace {

struct SingleRun {
  bool built = false;
  std::vector<Failure> failures;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

// Keep at most this many failures per oracle per run: a hot invariant can
// fire thousands of times, but triage only needs the bucket and an
// exemplar.
constexpr std::size_t kMaxPerOracle = 8;

void push_capped(std::vector<Failure>* failures, std::size_t* count,
                 Failure f) {
  if (*count < kMaxPerOracle) failures->push_back(std::move(f));
  ++*count;
}

SingleRun single_run(const CaseSpec& cs, bool timer_wheel) {
  SingleRun out;
  AssertTrapScope trap;
  try {
    harness::SpecError err;
    std::unique_ptr<BuiltCase> built = build_case(cs, &err, timer_wheel);
    if (built == nullptr) {
      out.failures.push_back(
          {OracleKind::kBuildReject, harness::to_string(err.code), err.detail});
      return out;
    }
    out.built = true;
    harness::Scenario& sc = *built->scenario;

    TraceDigest digest;
    std::vector<std::unique_ptr<DigestObserver>> observers;
    observers.reserve(static_cast<std::size_t>(sc.n_flows()));
    for (int i = 0; i < sc.n_flows(); ++i) {
      observers.push_back(std::make_unique<DigestObserver>(digest, i));
      sc.sender(i).add_observer(observers.back().get());
    }

    try {
      out.events = sc.run();
    } catch (const TrappedAbort& e) {
      out.failures.push_back({OracleKind::kAbort, e.id(), e.detail()});
    }
    for (int i = 0; i < sc.n_flows(); ++i)
      sc.sender(i).remove_observer(observers[static_cast<std::size_t>(i)].get());
    out.digest = digest.value();

    std::size_t n_audit = 0;
    for (const audit::Violation& v :
         sc.instrumentation().recording_session()->violations()) {
      char detail[160];
      std::snprintf(detail, sizeof detail, "t=%.9fs %s", v.t.to_seconds(),
                    v.detail.c_str());
      push_capped(&out.failures, &n_audit,
                  {OracleKind::kAudit, audit::to_string(v.id), detail});
    }
    std::size_t n_wd = 0;
    for (const chaos::WatchdogReport& r :
         sc.instrumentation().watchdog()->reports()) {
      char detail[160];
      std::snprintf(detail, sizeof detail, "t=%.9fs sender=%s: %s",
                    r.t.to_seconds(), r.who.c_str(), r.detail.c_str());
      push_capped(&out.failures, &n_wd,
                  {OracleKind::kWatchdog, chaos::to_string(r.id), detail});
    }
    std::size_t n_dead = 0;
    for (int i = 0; i < sc.n_flows(); ++i) {
      const tcp::TcpSenderBase& s = sc.sender(i);
      // The chaos soak's definition of dead: incomplete with nothing armed
      // that could ever act. Incomplete-but-armed is a slow flow, not a bug.
      if (s.complete() || s.rto_pending()) continue;
      char detail[120];
      std::snprintf(detail, sizeof detail,
                    "flow %d incomplete at horizon, una=%" PRIu64
                    " max_sent=%" PRIu64 ", no RTO armed",
                    i, s.snd_una(), s.max_sent());
      push_capped(&out.failures, &n_dead,
                  {OracleKind::kLiveness, "DEAD_FLOW", detail});
    }
  } catch (const TrappedAbort& e) {
    // Abort during construction (or teardown): no scenario state to read.
    out.failures.push_back({OracleKind::kAbort, e.id(), e.detail()});
  } catch (const std::exception& e) {
    out.failures.push_back({OracleKind::kAbort, "EXCEPTION", e.what()});
  }
  return out;
}

// One leg of the shard-equivalence oracle: build the case's materialized
// spec (no fault injectors — they interpose on a concrete Scenario graph,
// which the sharded engine does not share) on pdes::ShardedScenario with
// `shards` shards and return every flow's trace digest. Per-flow rather
// than one shared digest: the sharded engine pins each flow's trace, not
// the global interleave of flows that never exchange a packet. Audit and
// watchdog are off on BOTH legs so the two specs match exactly (sharded
// mode would force them off anyway).
struct ShardRun {
  bool built = false;
  std::string error;  // abort/build failure when !built
  std::vector<std::uint64_t> digests;
};

ShardRun shard_leg(const CaseSpec& cs, int shards) {
  ShardRun out;
  AssertTrapScope trap;
  try {
    harness::ScenarioSpec spec = materialize(cs);
    spec.shard_count = shards;
    spec.instruments.tracers = false;
    spec.instruments.audit = harness::AuditMode::kNone;
    spec.instruments.watchdog = false;
    harness::SpecError err;
    auto sc = pdes::ShardedScenario::try_build(std::move(spec), &err);
    if (sc == nullptr) {
      out.error = harness::to_string(err.code);
      return out;
    }
    const std::size_t n = static_cast<std::size_t>(sc->n_flows());
    std::vector<TraceDigest> digests(n);
    std::vector<std::unique_ptr<DigestObserver>> observers;
    observers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      observers.push_back(
          std::make_unique<DigestObserver>(digests[i], static_cast<int>(i)));
      sc->sender(static_cast<int>(i)).add_observer(observers.back().get());
    }
    sc->run();
    for (std::size_t i = 0; i < n; ++i)
      sc->sender(static_cast<int>(i)).remove_observer(observers[i].get());
    out.built = true;
    out.digests.reserve(n);
    for (const TraceDigest& d : digests) out.digests.push_back(d.value());
  } catch (const TrappedAbort& e) {
    out.error = e.id();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace

const char* to_string(OracleKind k) {
  switch (k) {
    case OracleKind::kAudit:
      return "audit";
    case OracleKind::kWatchdog:
      return "watchdog";
    case OracleKind::kLiveness:
      return "liveness";
    case OracleKind::kDeterminism:
      return "determinism";
    case OracleKind::kEquivalence:
      return "equivalence";
    case OracleKind::kShardEquivalence:
      return "shard-equivalence";
    case OracleKind::kAbort:
      return "abort";
    case OracleKind::kBuildReject:
      return "build-reject";
    case OracleKind::kCount:
      break;
  }
  return "?";
}

RunOutcome run_case(const CaseSpec& cs, const RunOptions& opts) {
  SingleRun primary = single_run(cs, /*timer_wheel=*/true);
  RunOutcome out;
  out.built = primary.built;
  out.failures = std::move(primary.failures);
  out.digest = primary.digest;
  out.events = primary.events;
  if (!out.built) return out;

  char detail[96];
  if (opts.check_determinism) {
    const SingleRun again = single_run(cs, /*timer_wheel=*/true);
    if (again.digest != out.digest) {
      std::snprintf(detail, sizeof detail,
                    "run1 digest %016" PRIx64 " != run2 digest %016" PRIx64,
                    out.digest, again.digest);
      out.failures.push_back(
          {OracleKind::kDeterminism, "TRACE_DIGEST", detail});
    }
  }
  if (opts.check_equivalence) {
    const SingleRun heap_only = single_run(cs, /*timer_wheel=*/false);
    if (heap_only.digest != out.digest) {
      std::snprintf(detail, sizeof detail,
                    "wheel digest %016" PRIx64 " != heap digest %016" PRIx64,
                    out.digest, heap_only.digest);
      out.failures.push_back(
          {OracleKind::kEquivalence, "ENGINE_DIGEST", detail});
    }
  }
  // Sharded vs single per-flow digests on the same (fault-free) spec.
  // Mutant cases are skipped: the sharded engine rejects flow_maker specs,
  // and the mutants' bugs are already caught by the primary oracles.
  //
  // The digest comparison is limited to multi-dumbbell cases: with
  // zero-delay access links every positive-delay link is a cut link, so no
  // delivery's scheduling spans a round boundary inside a shard and the
  // cross-engine trace equality is exact (DESIGN.md §17). Symmetric
  // topologies like the parking lot or mesh can produce same-picosecond
  // arrivals at one node via different links, where the engines legally
  // disagree on delivery order — there the sharded leg still runs both
  // legs as a crash/assert/build oracle, without comparing digests.
  if (opts.check_shard_equivalence && cs.shard_count > 1 &&
      cs.mutant.empty()) {
    const bool tie_safe = cs.topo == TopoKind::kMultiDumbbell;
    const ShardRun one = shard_leg(cs, /*shards=*/1);
    const ShardRun many = shard_leg(cs, cs.shard_count);
    if (!one.built || !many.built) {
      out.failures.push_back({OracleKind::kShardEquivalence, "SHARD_BUILD",
                              one.built ? many.error : one.error});
    } else if (tie_safe && one.digests != many.digests) {
      std::size_t flow = 0;
      const std::size_t n = std::min(one.digests.size(), many.digests.size());
      while (flow < n && one.digests[flow] == many.digests[flow]) ++flow;
      if (flow == n) {
        std::snprintf(detail, sizeof detail, "flow counts differ: %zu vs %zu",
                      one.digests.size(), many.digests.size());
      } else {
        std::snprintf(detail, sizeof detail,
                      "flow %zu: 1-shard digest %016" PRIx64
                      " != %d-shard digest %016" PRIx64,
                      flow, one.digests[flow], cs.shard_count,
                      many.digests[flow]);
      }
      out.failures.push_back(
          {OracleKind::kShardEquivalence, "SHARD_DIGEST", detail});
    }
  }
  return out;
}

std::string bucket_key(const CaseSpec& cs, const Failure& f) {
  std::string key = to_string(f.kind);
  key += '/';
  key += f.id;
  key += '/';
  key += cs.mutant.empty() ? app::to_string(cs.variant) : cs.mutant.c_str();
  return key;
}

}  // namespace rrtcp::fuzz
