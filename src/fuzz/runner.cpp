#include "fuzz/runner.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <utility>

#include "audit/invariant_auditor.hpp"
#include "chaos/watchdog.hpp"
#include "sim/assert.hpp"

namespace rrtcp::fuzz {

namespace {

// FNV-1a over the sender-observer event stream of every flow. Event order
// is simulation order, values are exact integers (times in picoseconds,
// doubles by bit pattern), so equal digests mean equal traces for any
// deterministic engine — the currency of the determinism and
// engine-equivalence oracles.
class TraceDigest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

class DigestObserver final : public tcp::SenderObserver {
 public:
  DigestObserver(TraceDigest& digest, int flow)
      : digest_{digest}, flow_{static_cast<std::uint64_t>(flow)} {}

  void on_send(sim::Time now, std::uint64_t seq, std::uint32_t len,
               bool rtx) override {
    mix_event(1, now);
    digest_.mix(seq);
    digest_.mix((static_cast<std::uint64_t>(len) << 1) | (rtx ? 1 : 0));
  }
  void on_ack(sim::Time now, std::uint64_t ack, bool dup) override {
    mix_event(2, now);
    digest_.mix((ack << 1) | (dup ? 1 : 0));
  }
  void on_phase(sim::Time now, tcp::TcpPhase phase) override {
    mix_event(3, now);
    digest_.mix(static_cast<std::uint64_t>(phase));
  }
  void on_timeout(sim::Time now) override { mix_event(4, now); }
  void on_cwnd(sim::Time now, double cwnd_packets) override {
    mix_event(5, now);
    std::uint64_t bits;
    std::memcpy(&bits, &cwnd_packets, sizeof bits);
    digest_.mix(bits);
  }

 private:
  void mix_event(std::uint64_t tag, sim::Time now) {
    digest_.mix((flow_ << 8) | tag);
    digest_.mix(static_cast<std::uint64_t>(now.ps()));
  }

  TraceDigest& digest_;
  std::uint64_t flow_;
};

struct SingleRun {
  bool built = false;
  std::vector<Failure> failures;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

// Keep at most this many failures per oracle per run: a hot invariant can
// fire thousands of times, but triage only needs the bucket and an
// exemplar.
constexpr std::size_t kMaxPerOracle = 8;

void push_capped(std::vector<Failure>* failures, std::size_t* count,
                 Failure f) {
  if (*count < kMaxPerOracle) failures->push_back(std::move(f));
  ++*count;
}

SingleRun single_run(const CaseSpec& cs, bool timer_wheel) {
  SingleRun out;
  AssertTrapScope trap;
  try {
    harness::SpecError err;
    std::unique_ptr<BuiltCase> built = build_case(cs, &err, timer_wheel);
    if (built == nullptr) {
      out.failures.push_back(
          {OracleKind::kBuildReject, harness::to_string(err.code), err.detail});
      return out;
    }
    out.built = true;
    harness::Scenario& sc = *built->scenario;

    TraceDigest digest;
    std::vector<std::unique_ptr<DigestObserver>> observers;
    observers.reserve(static_cast<std::size_t>(sc.n_flows()));
    for (int i = 0; i < sc.n_flows(); ++i) {
      observers.push_back(std::make_unique<DigestObserver>(digest, i));
      sc.sender(i).add_observer(observers.back().get());
    }

    try {
      out.events = sc.run();
    } catch (const TrappedAbort& e) {
      out.failures.push_back({OracleKind::kAbort, e.id(), e.detail()});
    }
    for (int i = 0; i < sc.n_flows(); ++i)
      sc.sender(i).remove_observer(observers[static_cast<std::size_t>(i)].get());
    out.digest = digest.value();

    std::size_t n_audit = 0;
    for (const audit::Violation& v :
         sc.instrumentation().recording_session()->violations()) {
      char detail[160];
      std::snprintf(detail, sizeof detail, "t=%.9fs %s", v.t.to_seconds(),
                    v.detail.c_str());
      push_capped(&out.failures, &n_audit,
                  {OracleKind::kAudit, audit::to_string(v.id), detail});
    }
    std::size_t n_wd = 0;
    for (const chaos::WatchdogReport& r :
         sc.instrumentation().watchdog()->reports()) {
      char detail[160];
      std::snprintf(detail, sizeof detail, "t=%.9fs sender=%s: %s",
                    r.t.to_seconds(), r.who.c_str(), r.detail.c_str());
      push_capped(&out.failures, &n_wd,
                  {OracleKind::kWatchdog, chaos::to_string(r.id), detail});
    }
    std::size_t n_dead = 0;
    for (int i = 0; i < sc.n_flows(); ++i) {
      const tcp::TcpSenderBase& s = sc.sender(i);
      // The chaos soak's definition of dead: incomplete with nothing armed
      // that could ever act. Incomplete-but-armed is a slow flow, not a bug.
      if (s.complete() || s.rto_pending()) continue;
      char detail[120];
      std::snprintf(detail, sizeof detail,
                    "flow %d incomplete at horizon, una=%" PRIu64
                    " max_sent=%" PRIu64 ", no RTO armed",
                    i, s.snd_una(), s.max_sent());
      push_capped(&out.failures, &n_dead,
                  {OracleKind::kLiveness, "DEAD_FLOW", detail});
    }
  } catch (const TrappedAbort& e) {
    // Abort during construction (or teardown): no scenario state to read.
    out.failures.push_back({OracleKind::kAbort, e.id(), e.detail()});
  } catch (const std::exception& e) {
    out.failures.push_back({OracleKind::kAbort, "EXCEPTION", e.what()});
  }
  return out;
}

}  // namespace

const char* to_string(OracleKind k) {
  switch (k) {
    case OracleKind::kAudit:
      return "audit";
    case OracleKind::kWatchdog:
      return "watchdog";
    case OracleKind::kLiveness:
      return "liveness";
    case OracleKind::kDeterminism:
      return "determinism";
    case OracleKind::kEquivalence:
      return "equivalence";
    case OracleKind::kAbort:
      return "abort";
    case OracleKind::kBuildReject:
      return "build-reject";
    case OracleKind::kCount:
      break;
  }
  return "?";
}

RunOutcome run_case(const CaseSpec& cs, const RunOptions& opts) {
  SingleRun primary = single_run(cs, /*timer_wheel=*/true);
  RunOutcome out;
  out.built = primary.built;
  out.failures = std::move(primary.failures);
  out.digest = primary.digest;
  out.events = primary.events;
  if (!out.built) return out;

  char detail[96];
  if (opts.check_determinism) {
    const SingleRun again = single_run(cs, /*timer_wheel=*/true);
    if (again.digest != out.digest) {
      std::snprintf(detail, sizeof detail,
                    "run1 digest %016" PRIx64 " != run2 digest %016" PRIx64,
                    out.digest, again.digest);
      out.failures.push_back(
          {OracleKind::kDeterminism, "TRACE_DIGEST", detail});
    }
  }
  if (opts.check_equivalence) {
    const SingleRun heap_only = single_run(cs, /*timer_wheel=*/false);
    if (heap_only.digest != out.digest) {
      std::snprintf(detail, sizeof detail,
                    "wheel digest %016" PRIx64 " != heap digest %016" PRIx64,
                    out.digest, heap_only.digest);
      out.failures.push_back(
          {OracleKind::kEquivalence, "ENGINE_DIGEST", detail});
    }
  }
  return out;
}

std::string bucket_key(const CaseSpec& cs, const Failure& f) {
  std::string key = to_string(f.kind);
  key += '/';
  key += f.id;
  key += '/';
  key += cs.mutant.empty() ? app::to_string(cs.variant) : cs.mutant.c_str();
  return key;
}

}  // namespace rrtcp::fuzz
