// Fuzz campaign: generate -> run oracles on the sweep pool -> triage ->
// shrink.
//
// A campaign is N generated cases executed as independent sweep jobs
// (harness::run_sweep — the same work-stealing pool, per-index seeds, and
// index-ordered sink every bench uses), then a SERIAL triage pass in index
// order: dedup failures into buckets, delta-debug the first case of each
// new bucket. Parallelism only touches the embarrassingly parallel part,
// so the sink's CSV, the triage report, and the written corpus are
// byte-identical for any --threads — the determinism contract the tests
// pin.
//
// Mutant injection (CampaignOptions::mutant / mutant_every) swaps every
// k-th case's senders for a named known-bug implementation: the
// self-test that proves the whole pipeline — oracles, bucketing,
// shrinking, corpus — catches a real bug when one exists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fuzz/case_spec.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/triage.hpp"
#include "harness/sweep.hpp"

namespace rrtcp::fuzz {

struct CampaignOptions {
  std::uint64_t n_cases = 100;
  std::uint64_t seed = 1;  // generator master seed
  int threads = 0;         // <= 0: harness resolution chain
  RunOptions run;          // per-case oracle toggles
  // When non-empty: every `mutant_every`-th case (index % k == 0) is built
  // from this known-bug sender instead of its sampled variant.
  std::string mutant;
  std::uint64_t mutant_every = 10;
  bool shrink = true;
  ShrinkOptions shrink_opts;
  // > 0: wall-clock budget in seconds. Cases dispatched after it expires
  // are recorded as skipped=1 rows and not run — the CI-smoke escape
  // hatch. NOTE: which cases get skipped depends on machine speed, so a
  // budgeted campaign trades the byte-identical-output guarantee for a
  // bounded runtime; leave at 0 anywhere determinism is asserted.
  double budget_seconds = 0.0;
};

struct CampaignResult {
  std::uint64_t cases_run = 0;      // actually executed (== n_cases unless
                                    // a budget expired)
  std::uint64_t cases_skipped = 0;  // budget-expired
  std::uint64_t cases_failed = 0;   // executed cases with >= 1 failure
  FailureTriage triage;
  // One row per case, index order (skipped rows carry skipped=1 only).
  std::unique_ptr<harness::ResultSink> sink;
  harness::SweepTiming timing;
};

// The exact spec campaign index i runs under these options: the
// generator's sample plus mutant injection. Exposed so tests and the
// replay path can reconstruct any campaign case from (options, index).
CaseSpec campaign_case(const CampaignOptions& opts, std::uint64_t index);

CampaignResult run_campaign(const CampaignOptions& opts);

}  // namespace rrtcp::fuzz
