// Seeded scenario generator: one master seed, unbounded valid cases.
//
// generate(i) is a pure function of (master_seed, i): the case's seed is
// harness::derive_seed(master_seed, i) and every sampling draw comes from a
// named sim::Rng stream of that seed, so case i is identical whatever order
// or thread generates it — the property the byte-identical campaign output
// and the resume-from-index replay both rest on.
//
// The generator samples VALID specs by construction (a kBuildReject from a
// generated case is a generator bug, and the runner buckets it as one) and
// inside the chaos soak's proven survivable envelope: workloads are sized
// so the horizon leaves headroom for the hostile-but-survivable default
// PlanBounds — a healthy variant must finish a campaign with zero oracle
// hits, or the fuzzer is noise.
#pragma once

#include <cstdint>

#include "fuzz/case_spec.hpp"

namespace rrtcp::fuzz {

class SpecGenerator {
 public:
  explicit SpecGenerator(std::uint64_t master_seed)
      : master_seed_{master_seed} {}

  // The i-th sampled case (never a mutant — campaigns inject those
  // deliberately by setting CaseSpec::mutant on chosen indices).
  CaseSpec generate(std::uint64_t index) const;

  std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace rrtcp::fuzz
