#include "fuzz/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "fuzz/spec_gen.hpp"

namespace rrtcp::fuzz {

namespace {

struct CaseOutcome {
  bool ran = false;
  RunOutcome out;
};

}  // namespace

CaseSpec campaign_case(const CampaignOptions& opts, std::uint64_t index) {
  CaseSpec cs = SpecGenerator{opts.seed}.generate(index);
  if (!opts.mutant.empty() && opts.mutant_every > 0 &&
      index % opts.mutant_every == 0) {
    cs.mutant = opts.mutant;
  }
  return cs;
}

CampaignResult run_campaign(const CampaignOptions& opts) {
  const std::size_t n = static_cast<std::size_t>(opts.n_cases);
  // Per-case outcome slots, written by the owning job only — the sweep's
  // isolation rule makes this race-free without locks.
  std::vector<CaseOutcome> outcomes(n);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts.budget_seconds));
  const bool budgeted = opts.budget_seconds > 0.0;

  std::vector<harness::SweepJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    char id[32];
    std::snprintf(id, sizeof id, "case%zu", i);
    jobs.push_back({id, [&opts, &outcomes, deadline, budgeted,
                         i](const harness::JobContext&) {
                      harness::Record row;
                      if (budgeted &&
                          std::chrono::steady_clock::now() >= deadline) {
                        row.set("skipped", true);
                        return row;
                      }
                      const CaseSpec cs =
                          campaign_case(opts, static_cast<std::uint64_t>(i));
                      CaseOutcome& slot = outcomes[i];
                      slot.out = run_case(cs, opts.run);
                      slot.ran = true;

                      char hex[24];
                      std::snprintf(hex, sizeof hex, "%016" PRIx64,
                                    slot.out.digest);
                      std::set<std::string> buckets;
                      for (const Failure& f : slot.out.failures)
                        buckets.insert(bucket_key(cs, f));
                      std::string joined;
                      for (const std::string& b : buckets) {
                        if (!joined.empty()) joined += ';';
                        joined += b;
                      }
                      row.set("seed", cs.seed)
                          .set("who", cs.mutant.empty()
                                          ? app::to_string(cs.variant)
                                          : cs.mutant.c_str())
                          .set("topo", to_string(cs.topo))
                          .set("faults",
                               static_cast<std::uint64_t>(
                                   cs.plan.faults.size()))
                          .set("built", slot.out.built)
                          .set("events", slot.out.events)
                          .set("digest", hex)
                          .set("failures",
                               static_cast<std::uint64_t>(
                                   slot.out.failures.size()))
                          .set("buckets", joined);
                      return row;
                    }});
  }

  CampaignResult result;
  result.sink = std::make_unique<harness::ResultSink>(n);
  harness::SweepOptions sweep;
  sweep.threads = opts.threads;
  sweep.base_seed = opts.seed;
  result.timing = harness::run_sweep(jobs, *result.sink, sweep);

  // Serial triage in index order: identical result whatever completion
  // order the pool produced. Shrinks happen here too — they re-run cases,
  // but only one per NEW bucket, and campaigns with zero findings (the
  // steady state) pay nothing.
  for (std::size_t i = 0; i < n; ++i) {
    const CaseOutcome& slot = outcomes[i];
    if (!slot.ran) {
      ++result.cases_skipped;
      continue;
    }
    ++result.cases_run;
    if (slot.out.failures.empty()) continue;
    ++result.cases_failed;
    const CaseSpec cs = campaign_case(opts, static_cast<std::uint64_t>(i));
    for (const Failure& f : slot.out.failures) {
      const bool fresh =
          result.triage.record(cs, f, static_cast<std::uint64_t>(i));
      if (fresh && opts.shrink) {
        const std::string bucket = bucket_key(cs, f);
        result.triage.attach_minimized(
            bucket, shrink(cs, bucket, opts.shrink_opts));
      }
    }
  }
  return result;
}

}  // namespace rrtcp::fuzz
