// Failure triage: dedup by bucket, keep one minimized repro per bug.
//
// A campaign can hit the same defect thousands of times; what a human (and
// the regression corpus) wants is ONE exemplar per bucket — the stable
// (oracle, ID, variant-or-mutant) key from runner.hpp — with its hit
// count, the first campaign index that found it, and the delta-debugged
// minimal CaseSpec. Buckets live in a std::map so every report and corpus
// write-out is in key order: byte-identical whatever thread interleaving
// produced the hits.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fuzz/case_spec.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"

namespace rrtcp::fuzz {

struct TriagedFailure {
  std::string bucket;
  Failure exemplar;             // first failure observed in this bucket
  std::uint64_t first_index = 0;  // campaign index of the first hit
  std::uint64_t hits = 0;         // failures deduped into this bucket
  CaseSpec repro;               // minimized spec (the first hit's spec
                                // until attach_minimized replaces it)
  bool minimized = false;
  int shrink_attempts = 0;
  int shrink_accepted = 0;
};

class FailureTriage {
 public:
  // Dedups `f` into its bucket; returns true when the bucket is new (the
  // campaign's cue to shrink this case).
  bool record(const CaseSpec& cs, const Failure& f, std::uint64_t index);

  // Replaces the bucket's repro with the shrinker's output.
  void attach_minimized(const std::string& bucket, const ShrinkResult& r);

  bool empty() const { return buckets_.empty(); }
  std::size_t n_buckets() const { return buckets_.size(); }
  std::uint64_t total_hits() const { return total_hits_; }
  const std::map<std::string, TriagedFailure>& buckets() const {
    return buckets_;
  }

  // Deterministic multi-line summary (bucket order, integers only).
  std::string report() const;

  // One replay file per bucket under `dir` (created if missing), named
  // from the sanitized bucket key, `expect` set to the bucket. Returns the
  // number of files written, -1 on I/O failure.
  int write_corpus(const std::string& dir) const;

  // "audit/RR_PROBE_CLOCK/broken-probe" -> "audit-RR_PROBE_CLOCK-broken-probe"
  static std::string sanitize(const std::string& bucket);

 private:
  std::map<std::string, TriagedFailure> buckets_;
  std::uint64_t total_hits_ = 0;
};

}  // namespace rrtcp::fuzz
