// One fuzz case, as data.
//
// A CaseSpec is the fuzzer's unit of work: a flat value that fully
// determines one simulation — sender variant (or a named known-bug mutant),
// topology family and its shape parameters, queue discipline, workload,
// watchdog thresholds, and a chaos::FaultPlan injected on the case's
// bottleneck pair. Flat scalars instead of a raw harness::ScenarioSpec so
// the delta-debugging shrinker can mutate structure ("parking lot ->
// dumbbell", "3 flows -> 1") with single-field edits and the replay codec
// (src/fuzz/serialize.hpp) can round-trip a case losslessly.
//
// materialize() lowers a CaseSpec to a ScenarioSpec plus the two injection
// points (data-path and ACK-path node/link pairs); build_case() validates,
// builds the Scenario and interposes the fault injectors — the one place
// the fuzzer touches live simulation objects.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "app/variant.hpp"
#include "chaos/fault.hpp"
#include "harness/scenario.hpp"
#include "sim/time.hpp"

namespace rrtcp::fuzz {

// Topology families the generator samples. kRandomMesh is a ring of
// routers with deterministic chord links and per-flow host pairs hung off
// it — the "any graph" case the first three presets do not cover.
enum class TopoKind : std::uint8_t {
  kDumbbell,
  kParkingLot,
  kMultiDumbbell,
  kRandomMesh,
  kCount,
};

const char* to_string(TopoKind k);
bool topo_kind_from_string(std::string_view name, TopoKind* out);

enum class QueueKind : std::uint8_t { kDropTail, kRed, kCount };

const char* to_string(QueueKind k);
bool queue_kind_from_string(std::string_view name, QueueKind* out);

struct CaseSpec {
  // Seeds every stochastic component of the run (RED drops, injector
  // draws) — NOT the generator draw that produced this spec; a loaded
  // replay file reproduces the run without the generator.
  std::uint64_t seed = 1;
  app::Variant variant = app::Variant::kRr;
  // Non-empty: build flows from the named known-bug sender
  // (src/fuzz/mutants.hpp) instead of `variant` — the fuzzer's
  // self-test teeth. The bucket key uses this name in place of the
  // variant's.
  std::string mutant;

  TopoKind topo = TopoKind::kDumbbell;
  int hops = 2;             // parking lot: bottleneck count
  int extra_receivers = 2;  // multi-dumbbell: M receiver hosts
  int mesh_routers = 4;     // random mesh: ring size
  int mesh_chords = 1;      // random mesh: extra core links

  std::int64_t bottleneck_bps = 800'000;
  sim::Time bottleneck_delay = sim::Time::milliseconds(100);
  QueueKind queue = QueueKind::kDropTail;
  std::uint64_t queue_packets = 8;
  double red_min_th = 5.0;  // RED knobs (queue == kRed, dumbbell only)
  double red_max_th = 20.0;
  double red_max_p = 0.02;

  int n_flows = 2;
  std::uint64_t bytes_per_flow = 100'000;
  sim::Time stagger = sim::Time::milliseconds(300);
  bool smooth_start = false;
  int n_cbr = 0;          // dumbbell only
  double cbr_load = 0.0;  // fraction of the bottleneck rate per stream
  sim::Time horizon = sim::Time::seconds(60);

  // Shard count for the shard-equivalence oracle: > 1 makes run_case also
  // build the (fault-free) spec on the sharded PDES engine and require
  // per-flow digests identical to a single-engine run. 1 = oracle off.
  // Only meaningful on graph-mode topologies (the dumbbell delegates).
  int shard_count = 1;

  // Watchdog thresholds (ride into InstrumentationOptions; satellite S2 —
  // short fuzzed scenarios need tighter windows than the soak defaults).
  sim::Time wd_check_interval = sim::Time::milliseconds(500);
  int wd_stall_rto_factor = 4;
  int wd_livelock_rtx = 8;
  std::optional<sim::Time> wd_stall_ceiling = std::nullopt;

  chaos::FaultPlan plan;
};

// Where the two fault injectors go: at `node`, wrapping `link`. The data
// injector applies the plan's kData subset, the ACK injector its kAck
// subset — the same split the chaos soak uses on its dumbbell.
struct InjectionPoints {
  int data_node = -1;
  int data_link = -1;
  int ack_node = -1;
  int ack_link = -1;
};

// Lowers a CaseSpec to the declarative ScenarioSpec (topology preset,
// flows, CBR, instrumentation with watchdog thresholds) and reports the
// injection points. Pure: no simulator is touched.
harness::ScenarioSpec materialize(const CaseSpec& cs,
                                  InjectionPoints* points = nullptr);

// A built, injector-wired case ready to run. Declaration order is the
// teardown contract: injectors die before the scenario (their pending
// delay-spike events are never fired after the sim stops).
struct BuiltCase {
  std::unique_ptr<harness::Scenario> scenario;
  std::unique_ptr<chaos::FaultInjector> data_injector;
  std::unique_ptr<chaos::FaultInjector> ack_injector;
};

// validate + build + interpose. Returns nullptr with *err filled (when
// non-null) if the spec is structurally invalid — the generator's
// discard-and-resample path, never a crash. `timer_wheel = false` builds
// the same case on the heap-only scheduler (the engine-equivalence
// oracle's second leg).
std::unique_ptr<BuiltCase> build_case(const CaseSpec& cs,
                                      harness::SpecError* err = nullptr,
                                      bool timer_wheel = true);

}  // namespace rrtcp::fuzz
