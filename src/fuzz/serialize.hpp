// Replay-file codec: a CaseSpec as a self-contained text artifact.
//
// A minimized repro is only useful if it survives being checked in: the
// format is line-oriented `key = value` (order-insensitive, '#' comments,
// blank lines ignored) with times as exact picosecond integers and doubles
// printed with round-trip precision, so a file reproduces the identical
// simulation bit-for-bit on any host. `fault =` lines carry the
// FaultPlan one spec per line (chaos::FaultSpec::to_text); `expect =`
// lines carry the bucket keys the case is known to hit — the replay
// driver and the ctest corpus runner grade against them.
//
//   format = rrtcp-fuzz-repro-v1
//   # bucket: watchdog/WD_SILENT_DEATH/dead-rto
//   seed = 77
//   mutant = dead-rto
//   ...
//   fault = kind=outage path=data start_ps=500000000000 ...
//   expect = watchdog/WD_SILENT_DEATH/dead-rto
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fuzz/case_spec.hpp"

namespace rrtcp::fuzz {

inline constexpr std::string_view kReplayFormat = "rrtcp-fuzz-repro-v1";

struct ReplayCase {
  CaseSpec spec;
  // Bucket keys this case is expected to hit (subset check at replay time;
  // empty = expect a clean run).
  std::vector<std::string> expect;
};

// Serializes every field (including defaults — a file is immune to future
// default changes). `expect` entries become `expect =` lines.
std::string to_replay_text(const CaseSpec& cs,
                           const std::vector<std::string>& expect = {});

// Strict inverse: unknown keys, malformed values, duplicate scalars, or a
// missing/unsupported `format` line fail with a one-line diagnostic in
// *error (when non-null). Unknown mutant names fail here, at load time.
bool parse_replay_text(std::string_view text, ReplayCase* out,
                       std::string* error = nullptr);

bool load_replay_file(const std::string& path, ReplayCase* out,
                      std::string* error = nullptr);
bool write_replay_file(const std::string& path, const CaseSpec& cs,
                       const std::vector<std::string>& expect = {});

}  // namespace rrtcp::fuzz
