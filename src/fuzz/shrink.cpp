#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace rrtcp::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(std::string bucket, const ShrinkOptions& opts)
      : bucket_{std::move(bucket)}, max_attempts_{opts.max_attempts} {
    // The expensive double-run oracles only stay on when the bucket under
    // preservation IS one of them; an audit/watchdog bucket shrinks on
    // single runs.
    run_.check_determinism = bucket_.rfind("determinism/", 0) == 0;
    run_.check_equivalence = bucket_.rfind("equivalence/", 0) == 0;
  }

  bool budget() const { return attempts_ < max_attempts_; }
  int attempts() const { return attempts_; }
  int accepted() const { return accepted_; }

  bool hits(const CaseSpec& cs) {
    ++attempts_;
    const RunOutcome out = run_case(cs, run_);
    for (const Failure& f : out.failures)
      if (bucket_key(cs, f) == bucket_) return true;
    return false;
  }

  // Accept `cand` as the new current spec iff it still hits the bucket.
  bool take(CaseSpec* cur, CaseSpec cand) {
    if (!budget() || !hits(cand)) return false;
    *cur = std::move(cand);
    ++accepted_;
    return true;
  }

 private:
  std::string bucket_;
  RunOptions run_;
  int max_attempts_;
  int attempts_ = 0;
  int accepted_ = 0;
};

// Greedy one-at-a-time ddmin over the fault list: cheap (plans are short)
// and order-stable. Restarts after every accepted removal so indices stay
// honest.
bool pass_faults(CaseSpec* cur, Shrinker* sh) {
  bool any = false;
  bool improved = true;
  while (improved && sh->budget()) {
    improved = false;
    for (std::size_t i = 0; i < cur->plan.faults.size() && sh->budget(); ++i) {
      CaseSpec cand = *cur;
      cand.plan.faults.erase(cand.plan.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (sh->take(cur, std::move(cand))) {
        any = improved = true;
        break;
      }
    }
  }
  return any;
}

bool pass_topology(CaseSpec* cur, Shrinker* sh) {
  bool any = false;
  if (cur->topo != TopoKind::kDumbbell) {
    CaseSpec cand = *cur;
    cand.topo = TopoKind::kDumbbell;
    any |= sh->take(cur, std::move(cand));
  }
  // Shrink the shape parameters of whatever topology survived (no-ops on
  // the dumbbell — the fields are unused there, normalize them anyway so
  // minimized specs are canonical).
  if (cur->hops != 2 || cur->extra_receivers != 1 || cur->mesh_routers != 3 ||
      cur->mesh_chords != 0) {
    CaseSpec cand = *cur;
    cand.hops = 2;
    cand.extra_receivers = 1;
    cand.mesh_routers = 3;
    cand.mesh_chords = 0;
    any |= sh->take(cur, std::move(cand));
  }
  return any;
}

bool pass_workload(CaseSpec* cur, Shrinker* sh) {
  bool any = false;
  while (cur->n_flows > 1 && sh->budget()) {
    CaseSpec cand = *cur;
    cand.n_flows = std::max(1, cand.n_flows / 2);
    if (!sh->take(cur, std::move(cand))) break;
    any = true;
  }
  if (cur->n_cbr > 0) {
    CaseSpec cand = *cur;
    cand.n_cbr = 0;
    cand.cbr_load = 0.0;
    any |= sh->take(cur, std::move(cand));
  }
  if (cur->queue != QueueKind::kDropTail) {
    CaseSpec cand = *cur;
    cand.queue = QueueKind::kDropTail;
    any |= sh->take(cur, std::move(cand));
  }
  while (cur->bytes_per_flow / 2 >= 10'000 && sh->budget()) {
    CaseSpec cand = *cur;
    cand.bytes_per_flow /= 2;
    if (!sh->take(cur, std::move(cand))) break;
    any = true;
  }
  if (cur->stagger > sim::Time::zero()) {
    CaseSpec cand = *cur;
    cand.stagger = sim::Time::zero();
    any |= sh->take(cur, std::move(cand));
  }
  if (cur->smooth_start) {
    CaseSpec cand = *cur;
    cand.smooth_start = false;
    any |= sh->take(cur, std::move(cand));
  }
  return any;
}

bool pass_horizon(CaseSpec* cur, Shrinker* sh) {
  bool any = false;
  while (cur->horizon >= sim::Time::seconds(20.0) && sh->budget()) {
    CaseSpec cand = *cur;
    cand.horizon = sim::Time::picoseconds(cand.horizon.ps() / 2);
    if (!sh->take(cur, std::move(cand))) break;
    any = true;
  }
  return any;
}

}  // namespace

ShrinkResult shrink(const CaseSpec& cs, const std::string& bucket,
                    const ShrinkOptions& opts) {
  Shrinker sh{bucket, opts};
  CaseSpec cur = cs;
  // The contract check: a bucket the input cannot reproduce is returned
  // as-is (flaky inputs exist only if a determinism bug does — which is
  // itself a bucket).
  if (!sh.hits(cur))
    return {std::move(cur), sh.attempts(), sh.accepted()};

  bool changed = true;
  while (changed && sh.budget()) {
    changed = false;
    changed |= pass_topology(&cur, &sh);
    changed |= pass_workload(&cur, &sh);
    changed |= pass_faults(&cur, &sh);
    changed |= pass_horizon(&cur, &sh);
  }
  return {std::move(cur), sh.attempts(), sh.accepted()};
}

}  // namespace rrtcp::fuzz
