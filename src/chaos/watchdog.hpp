// Liveness watchdog: detects flows that stop making progress.
//
// The invariant auditor (src/audit) checks that every observed event is
// legal; it cannot complain about events that never happen. The watchdog
// covers that blind spot. It attaches to senders exactly like the auditor
// (a SenderObserver per flow) plus one periodic check timer, and flags
// three failure shapes, each with a stable report ID:
//
//   WD_STALL        — no sender activity (send/ACK/timeout) for more than
//                     stall_rto_factor x the current RTO while the transfer
//                     is incomplete. A correct sender can always name the
//                     next thing that will happen (an ACK or its own RTO),
//                     so silence for several RTO spans means the recovery
//                     machinery wedged. (Liu et al., "Optimizing TCP Loss
//                     Recovery Performance Over Mobile Data Networks":
//                     stalled loss recovery dominates mobile TCP latency.)
//
//   WD_LIVELOCK     — the same segment at snd_una retransmitted more than
//                     livelock_rtx_threshold times while snd_una did not
//                     advance, faster than exponential RTO backoff can
//                     explain (elapsed < count x min_rto). Busy, but going
//                     nowhere. (Diana & Lochin, "Relentless Congestion
//                     Control": loss-tolerant senders must still bound
//                     their retransmission aggressiveness.)
//
//   WD_SILENT_DEATH — data outstanding, transfer incomplete, and the
//                     retransmission timer not armed at a periodic check.
//                     Nothing is scheduled that could ever wake the flow:
//                     it is dead, silently.
//
// Thresholds are deliberately conservative: a healthy sender under heavy
// backoff retransmits the boundary segment spaced >= min_rto apart with
// doubling gaps, which can never trip the livelock ratio, and always has
// its timer pending, which excludes stall/silent-death false positives.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"
#include "tcp/sender_base.hpp"
#include "tcp/types.hpp"

namespace rrtcp::chaos {

enum class WatchdogReportId : std::uint8_t {
  kStall,
  kLivelock,
  kSilentDeath,
  kCount,
};

const char* to_string(WatchdogReportId id);

struct WatchdogConfig {
  // Period of the liveness sweep over all attached senders.
  sim::Time check_interval = sim::Time::milliseconds(500);
  // Stall = no activity for longer than this many current-RTO spans.
  int stall_rto_factor = 4;
  // Livelock = more than this many same-segment retransmissions without
  // snd_una advancing, in less wall-clock than backoff allows.
  int livelock_rtx_threshold = 8;
  // Optional absolute cap on tolerated silence, applied only when the
  // silence is UNEXPLAINED — no retransmission timer armed, or the armed
  // timer's expiry has already passed without firing. A healthy sender in
  // deep backoff (silent up to 64 s with its RTO legitimately pending) is
  // untouched; a wedged one is flagged after the ceiling instead of after
  // stall_rto_factor x a backed-off RTO. Short fuzzed scenarios set this
  // so stalls surface inside their few-second horizons; nullopt keeps the
  // soak's purely RTO-relative behavior. Configure through
  // InstrumentationOptions::watchdog_config / ScenarioSpec::instruments.
  std::optional<sim::Time> stall_ceiling = std::nullopt;
};

struct WatchdogReport {
  WatchdogReportId id;
  sim::Time t;
  std::string who;     // sender variant name
  std::string detail;
};

class LivenessWatchdog {
 public:
  enum class FailMode {
    kAbort,   // print the report and abort (soak in CI)
    kRecord,  // collect reports for inspection (tests, soak verdicts)
  };

  LivenessWatchdog(sim::Simulator& sim, WatchdogConfig cfg = {},
                   FailMode mode = FailMode::kRecord);
  ~LivenessWatchdog();
  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  // Start watching `sender`. Observers are removed on destruction.
  void attach(tcp::TcpSenderBase& sender);

  // Stop the periodic sweep (e.g. to let Simulator::run() drain). Attached
  // observers keep feeding event state; only the timer stops.
  void disarm();

  bool clean() const { return reports_.empty(); }
  const std::vector<WatchdogReport>& reports() const { return reports_; }
  std::size_t count(WatchdogReportId id) const;

 private:
  class Monitor final : public tcp::SenderObserver {
   public:
    Monitor(LivenessWatchdog& wd, tcp::TcpSenderBase& sender);

    void on_send(sim::Time now, std::uint64_t seq, std::uint32_t len,
                 bool rtx) override;
    void on_ack(sim::Time now, std::uint64_t ack, bool dup) override;
    void on_ack_processed(sim::Time now, std::uint64_t ack,
                          bool dup) override;
    void on_timeout(sim::Time now) override;

    // Periodic sweep: stall + silent-death checks.
    void check(sim::Time now);
    bool finished() const { return sender_.complete(); }
    void detach() { sender_.remove_observer(this); }

   private:
    LivenessWatchdog& wd_;
    tcp::TcpSenderBase& sender_;
    sim::Time last_activity_;
    std::uint64_t last_una_ = 0;
    // Same-segment retransmission episode (livelock detection).
    std::uint64_t rtx_seq_ = 0;
    int rtx_count_ = 0;
    sim::Time rtx_first_ = sim::Time::zero();
    // One report per shape per episode; all reset when snd_una advances.
    bool flagged_stall_ = false;
    bool flagged_livelock_ = false;
    bool flagged_dead_ = false;
  };

  void tick();
  [[gnu::format(printf, 4, 5)]] void report(WatchdogReportId id,
                                            const char* who, const char* fmt,
                                            ...);

  sim::Simulator& sim_;
  WatchdogConfig cfg_;
  FailMode mode_;
  sim::Timer timer_;
  bool armed_ = false;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::vector<WatchdogReport> reports_;
};

}  // namespace rrtcp::chaos
