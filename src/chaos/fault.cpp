#include "chaos/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/assert.hpp"
#include "sim/log.hpp"

namespace rrtcp::chaos {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kBlackhole:
      return "blackhole";
    case FaultKind::kAckLoss:
      return "ackloss";
    case FaultKind::kAckDuplicate:
      return "ackdup";
    case FaultKind::kBurstLoss:
      return "burst";
    case FaultKind::kDelaySpike:
      return "delayspike";
    case FaultKind::kCount:
      break;
  }
  return "?";
}

bool fault_kind_from_string(std::string_view name, FaultKind* out) {
  for (int k = 0; k < static_cast<int>(FaultKind::kCount); ++k) {
    if (name == to_string(static_cast<FaultKind>(k))) {
      *out = static_cast<FaultKind>(k);
      return true;
    }
  }
  return false;
}

const char* to_string(FaultPath p) {
  return p == FaultPath::kData ? "data" : "ack";
}

bool fault_path_from_string(std::string_view name, FaultPath* out) {
  if (name == "data") {
    *out = FaultPath::kData;
    return true;
  }
  if (name == "ack") {
    *out = FaultPath::kAck;
    return true;
  }
  return false;
}

bool FaultSpec::active_at(sim::Time now) const {
  if (now < start) return false;
  if (period > sim::Time::zero()) {
    // Flapping: the window [0, duration) repeats every period.
    const std::int64_t cycles = (now - start) / period;
    const sim::Time phase = now - start - period * cycles;
    return phase < duration;
  }
  return now < start + duration;
}

std::string FaultSpec::describe() const {
  char buf[160];
  int n = std::snprintf(buf, sizeof buf, "%s@%.3fs+%.3fs", to_string(kind),
                        start.to_seconds(), duration.to_seconds());
  auto append = [&](const char* fmt, auto... args) {
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), fmt,
                       args...);
  };
  if (period > sim::Time::zero()) append("/%.3fs", period.to_seconds());
  switch (kind) {
    case FaultKind::kAckLoss:
    case FaultKind::kAckDuplicate:
      append(" p=%.2f", probability);
      break;
    case FaultKind::kDelaySpike:
      append(" p=%.2f d=%.3fs", probability, extra_delay.to_seconds());
      break;
    case FaultKind::kBurstLoss:
      append(" ge=%.2f/%.2f/%.2f", p_enter_bad, p_exit_bad, loss_in_bad);
      break;
    default:
      break;
  }
  append("[%s]", path == FaultPath::kData ? "data" : "ack");
  return buf;
}

std::string FaultSpec::to_text() const {
  // "%.17g" round-trips every finite double bit-for-bit, so a replayed
  // spec drives byte-identical RNG draws.
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "kind=%s path=%s start_ps=%lld dur_ps=%lld period_ps=%lld "
                "p=%.17g delay_ps=%lld enter=%.17g exit=%.17g loss=%.17g "
                "data_only=%d",
                to_string(kind), to_string(path),
                static_cast<long long>(start.ps()),
                static_cast<long long>(duration.ps()),
                static_cast<long long>(period.ps()), probability,
                static_cast<long long>(extra_delay.ps()), p_enter_bad,
                p_exit_bad, loss_in_bad, data_only ? 1 : 0);
  return buf;
}

bool FaultSpec::from_text(std::string_view line, FaultSpec* out) {
  FaultSpec s;
  bool saw_kind = false;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size()) break;
    std::size_t end = line.find(' ', pos);
    if (end == std::string_view::npos) end = line.size();
    const std::string_view token = line.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = token.substr(0, eq);
    const std::string value{token.substr(eq + 1)};  // NUL-terminated for strto*
    char* rest = nullptr;
    auto as_ps = [&rest, &value]() {
      return sim::Time::picoseconds(std::strtoll(value.c_str(), &rest, 10));
    };
    auto as_double = [&rest, &value]() {
      return std::strtod(value.c_str(), &rest);
    };
    rest = nullptr;
    if (key == "kind") {
      if (!fault_kind_from_string(value, &s.kind)) return false;
      saw_kind = true;
    } else if (key == "path") {
      if (!fault_path_from_string(value, &s.path)) return false;
    } else if (key == "start_ps") {
      s.start = as_ps();
    } else if (key == "dur_ps") {
      s.duration = as_ps();
    } else if (key == "period_ps") {
      s.period = as_ps();
    } else if (key == "p") {
      s.probability = as_double();
    } else if (key == "delay_ps") {
      s.extra_delay = as_ps();
    } else if (key == "enter") {
      s.p_enter_bad = as_double();
    } else if (key == "exit") {
      s.p_exit_bad = as_double();
    } else if (key == "loss") {
      s.loss_in_bad = as_double();
    } else if (key == "data_only") {
      s.data_only = value == "1";
      if (value != "0" && value != "1") return false;
    } else {
      return false;
    }
    // Numeric keys must consume their whole value ("start_ps=12x" is a
    // corrupt file, not a 12).
    if (rest != nullptr && (rest == value.c_str() || *rest != '\0'))
      return false;
  }
  if (!saw_kind) return false;
  *out = s;
  return true;
}

FaultPlan FaultPlan::subset(FaultPath p) const {
  FaultPlan out;
  for (const FaultSpec& s : faults)
    if (s.path == p) out.faults.push_back(s);
  return out;
}

std::string FaultPlan::describe() const {
  if (faults.empty()) return "(no faults)";
  std::string out;
  for (const FaultSpec& s : faults) {
    if (!out.empty()) out += "; ";
    out += s.describe();
  }
  return out;
}

FaultPlan make_random_plan(std::uint64_t seed, const PlanBounds& b) {
  RRTCP_ASSERT(b.min_faults >= 0 && b.min_faults <= b.max_faults);
  RRTCP_ASSERT(b.earliest <= b.latest);
  RRTCP_ASSERT(b.min_duration <= b.max_duration);
  sim::Rng rng{seed, "fault-plan"};

  auto pick_time = [&rng](sim::Time lo, sim::Time hi) {
    return sim::Time::picoseconds(static_cast<std::int64_t>(rng.uniform_int(
        static_cast<std::uint64_t>(lo.ps()),
        static_cast<std::uint64_t>(hi.ps()))));
  };

  FaultPlan plan;
  const int n = b.min_faults + static_cast<int>(rng.uniform_int(
                                   0, static_cast<std::uint64_t>(
                                          b.max_faults - b.min_faults)));
  for (int i = 0; i < n; ++i) {
    FaultSpec s;
    s.kind = static_cast<FaultKind>(
        rng.uniform_int(0, static_cast<std::uint64_t>(FaultKind::kCount) - 1));
    s.start = pick_time(b.earliest, b.latest);
    s.duration = pick_time(b.min_duration, b.max_duration);
    switch (s.kind) {
      case FaultKind::kOutage:
        // Either path can lose carrier; half the outages flap forever with
        // a duty cycle of at most 1/2 (period >= 2 x duration), so a flow
        // always gets windows of connectivity to recover in.
        s.path = rng.bernoulli(0.3) ? FaultPath::kAck : FaultPath::kData;
        if (rng.bernoulli(0.5))
          s.period = s.duration * static_cast<std::int64_t>(
                                      2 + rng.uniform_int(0, 2));
        break;
      case FaultKind::kBlackhole:
        s.path = FaultPath::kData;
        break;
      case FaultKind::kAckLoss:
        s.path = FaultPath::kAck;
        s.probability = 0.05 + 0.25 * rng.uniform01();
        break;
      case FaultKind::kAckDuplicate:
        s.path = FaultPath::kAck;
        s.probability = 0.05 + 0.25 * rng.uniform01();
        break;
      case FaultKind::kBurstLoss:
        s.path = FaultPath::kData;
        s.data_only = true;
        s.p_enter_bad = 0.05 + 0.15 * rng.uniform01();
        s.p_exit_bad = 0.3 + 0.4 * rng.uniform01();
        s.loss_in_bad = 0.5 + 0.5 * rng.uniform01();
        break;
      case FaultKind::kDelaySpike:
        s.path = rng.bernoulli(0.3) ? FaultPath::kAck : FaultPath::kData;
        s.probability = 0.1 + 0.4 * rng.uniform01();
        s.extra_delay = pick_time(b.min_delay_spike, b.max_delay_spike);
        break;
      case FaultKind::kCount:
        break;
    }
    plan.faults.push_back(s);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// FaultInjector

namespace {

std::string stream_name(const std::string& base, std::size_t index) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s/spec%zu", base.c_str(), index);
  return buf;
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, net::PacketHandler& inner,
                             FaultPlan plan, std::uint64_t seed,
                             std::string name)
    : sim_{sim}, inner_{inner}, plan_{std::move(plan)}, name_{std::move(name)} {
  specs_.reserve(plan_.faults.size());
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    // One named stream per spec: draws for spec i never depend on how many
    // packets the other specs consulted, so plans compose reproducibly.
    specs_.push_back(
        {plan_.faults[i], sim::Rng{seed, stream_name(name_, i)}, false});
  }
}

void FaultInjector::send(net::Packet p) {
  const sim::Time now = sim_.now();
  bool drop = false;
  bool duplicate = false;
  sim::Time extra = sim::Time::zero();

  // Every active spec is consulted even once the packet is already doomed,
  // so each spec's RNG consumption depends only on the packet stream it
  // sees — never on the other specs in the plan.
  for (ArmedSpec& a : specs_) {
    const FaultSpec& s = a.spec;
    if (!s.active_at(now)) continue;
    switch (s.kind) {
      case FaultKind::kOutage:
      case FaultKind::kBlackhole:
        drop = true;
        break;
      case FaultKind::kAckLoss:
        if (p.is_ack() && a.rng.bernoulli(s.probability)) drop = true;
        break;
      case FaultKind::kAckDuplicate:
        if (p.is_ack() && a.rng.bernoulli(s.probability)) duplicate = true;
        break;
      case FaultKind::kBurstLoss:
        if (s.data_only && !p.is_data()) break;
        // Advance the Gilbert-Elliott chain one step per consulted packet.
        a.bad = a.bad ? !a.rng.bernoulli(s.p_exit_bad)
                      : a.rng.bernoulli(s.p_enter_bad);
        if (a.bad && a.rng.bernoulli(s.loss_in_bad)) drop = true;
        break;
      case FaultKind::kDelaySpike:
        if (a.rng.bernoulli(s.probability))
          extra = std::max(extra, s.extra_delay);
        break;
      case FaultKind::kCount:
        break;
    }
  }

  if (drop) {
    ++dropped_;
    RRTCP_TRACE(now, name_.c_str(), "drop %s seq=%llu",
                p.is_ack() ? "ack" : "data",
                static_cast<unsigned long long>(p.is_ack() ? p.tcp.ack
                                                           : p.tcp.seq));
    return;
  }

  if (extra > sim::Time::zero()) {
    ++delayed_;
    // The held packet is still "before" the wrapped link: when it emerges
    // it re-checks the drop windows (emerge()), so a spike cannot carry a
    // packet across the start of a blackhole.
    auto release = [this, p = std::move(p), duplicate]() mutable {
      emerge(std::move(p), duplicate);
    };
    sim_.schedule_in(extra, std::move(release));
    return;
  }

  forward(std::move(p), duplicate);
}

bool FaultInjector::blackholed(sim::Time now) const {
  for (const ArmedSpec& a : specs_) {
    if (a.spec.kind == FaultKind::kBlackhole && a.spec.active_at(now))
      return true;
  }
  return false;
}

void FaultInjector::emerge(net::Packet p, bool duplicate) {
  if (blackholed(sim_.now())) {
    ++dropped_;
    return;
  }
  forward(std::move(p), duplicate);
}

void FaultInjector::forward(net::Packet p, bool duplicate) {
  ++forwarded_;
  if (duplicate) {
    ++duplicated_;
    net::Packet copy = p;
    inner_.send(std::move(p));
    inner_.send(std::move(copy));
    return;
  }
  inner_.send(std::move(p));
}

int interpose(net::Node& node, net::PacketHandler& wrapped,
              FaultInjector& injector) {
  const int n = node.replace_route_target(&wrapped, &injector);
  RRTCP_ASSERT_MSG(n > 0, "interpose found no route through the wrapped link");
  return n;
}

}  // namespace rrtcp::chaos
