#include "chaos/watchdog.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "sim/assert.hpp"

namespace rrtcp::chaos {

namespace {

// Cap on stored reports: a dead flow re-flags at most once per progress
// epoch, but a pathological sender could still spam; tests only need a few.
constexpr std::size_t kMaxReports = 256;

}  // namespace

const char* to_string(WatchdogReportId id) {
  switch (id) {
    case WatchdogReportId::kStall:
      return "WD_STALL";
    case WatchdogReportId::kLivelock:
      return "WD_LIVELOCK";
    case WatchdogReportId::kSilentDeath:
      return "WD_SILENT_DEATH";
    case WatchdogReportId::kCount:
      break;
  }
  return "?";
}

LivenessWatchdog::LivenessWatchdog(sim::Simulator& sim, WatchdogConfig cfg,
                                   FailMode mode)
    : sim_{sim}, cfg_{cfg}, mode_{mode}, timer_{sim, [this] { tick(); }} {
  RRTCP_ASSERT(cfg_.check_interval > sim::Time::zero());
  RRTCP_ASSERT(cfg_.stall_rto_factor >= 1);
  RRTCP_ASSERT(cfg_.livelock_rtx_threshold >= 1);
  if (cfg_.stall_ceiling)
    RRTCP_ASSERT(*cfg_.stall_ceiling > sim::Time::zero());
}

LivenessWatchdog::~LivenessWatchdog() {
  for (auto& m : monitors_) m->detach();
}

void LivenessWatchdog::attach(tcp::TcpSenderBase& sender) {
  monitors_.push_back(std::make_unique<Monitor>(*this, sender));
  sender.add_observer(monitors_.back().get());
  if (!armed_) {
    armed_ = true;
    timer_.schedule(cfg_.check_interval);
  }
}

void LivenessWatchdog::disarm() {
  armed_ = false;
  timer_.cancel();
}

std::size_t LivenessWatchdog::count(WatchdogReportId id) const {
  std::size_t n = 0;
  for (const WatchdogReport& r : reports_)
    if (r.id == id) ++n;
  return n;
}

void LivenessWatchdog::tick() {
  const sim::Time now = sim_.now();
  bool any_live = false;
  for (auto& m : monitors_) {
    if (m->finished()) continue;
    any_live = true;
    m->check(now);
  }
  // Stop re-arming once every watched transfer finished, so a simulation
  // driven by Simulator::run() can drain its event queue.
  if (armed_ && any_live) timer_.schedule(cfg_.check_interval);
}

void LivenessWatchdog::report(WatchdogReportId id, const char* who,
                              const char* fmt, ...) {
  char detail[256];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(detail, sizeof detail, fmt, ap);
  va_end(ap);

  const sim::Time now = sim_.now();
  if (mode_ == FailMode::kAbort) {
    char msg[384];
    std::snprintf(msg, sizeof msg, "t=%.9fs sender=%s: %s", now.to_seconds(),
                  who, detail);
    RR_AUDIT_FAIL(to_string(id), msg);
  }
  if (reports_.size() < kMaxReports) reports_.push_back({id, now, who, detail});
}

// ---------------------------------------------------------------------------
// Monitor

LivenessWatchdog::Monitor::Monitor(LivenessWatchdog& wd,
                                   tcp::TcpSenderBase& sender)
    : wd_{wd},
      sender_{sender},
      last_activity_{wd.sim_.now()},
      last_una_{sender.snd_una()} {}

void LivenessWatchdog::Monitor::on_send(sim::Time now, std::uint64_t seq,
                                        std::uint32_t /*len*/, bool rtx) {
  last_activity_ = now;
  if (!rtx || seq != sender_.snd_una()) return;

  // Same-segment retransmission episode at the left window edge.
  if (rtx_count_ > 0 && seq == rtx_seq_) {
    ++rtx_count_;
  } else {
    rtx_seq_ = seq;
    rtx_count_ = 1;
    rtx_first_ = now;
  }

  // Healthy repetition is RTO-driven and therefore exponentially spaced:
  // k timeout retransmissions span at least (2^k - 1) x min_rto. More than
  // the threshold inside count x min_rto means the sender is spinning on
  // dup ACKs (or equivalent) without backing off.
  if (!flagged_livelock_ && rtx_count_ > wd_.cfg_.livelock_rtx_threshold &&
      now - rtx_first_ <
          sender_.config().min_rto * static_cast<std::int64_t>(rtx_count_)) {
    flagged_livelock_ = true;
    wd_.report(WatchdogReportId::kLivelock, sender_.variant_name(),
               "seq=%llu retransmitted %d times in %.3fs without progress "
               "(una=%llu)",
               static_cast<unsigned long long>(seq), rtx_count_,
               (now - rtx_first_).to_seconds(),
               static_cast<unsigned long long>(sender_.snd_una()));
  }
}

void LivenessWatchdog::Monitor::on_ack(sim::Time now, std::uint64_t /*ack*/,
                                       bool /*dup*/) {
  last_activity_ = now;
}

void LivenessWatchdog::Monitor::on_ack_processed(sim::Time /*now*/,
                                                 std::uint64_t /*ack*/,
                                                 bool /*dup*/) {
  if (sender_.snd_una() != last_una_) {
    // Forward progress: every episode and every flag resets.
    last_una_ = sender_.snd_una();
    rtx_count_ = 0;
    flagged_stall_ = false;
    flagged_livelock_ = false;
    flagged_dead_ = false;
  }
}

void LivenessWatchdog::Monitor::on_timeout(sim::Time now) {
  last_activity_ = now;
}

void LivenessWatchdog::Monitor::check(sim::Time now) {
  if (!sender_.started() || sender_.complete()) return;

  const std::uint64_t una = sender_.snd_una();
  const std::uint64_t max_sent = sender_.max_sent();

  // Silent death: data outstanding but nothing armed that could ever act.
  if (una < max_sent && !sender_.rto_pending() && !flagged_dead_) {
    flagged_dead_ = true;
    wd_.report(WatchdogReportId::kSilentDeath, sender_.variant_name(),
               "una=%llu < max_sent=%llu with no RTO timer armed",
               static_cast<unsigned long long>(una),
               static_cast<unsigned long long>(max_sent));
  }

  // Stall: an incomplete transfer whose sender has gone quiet for several
  // RTO spans. The RTO read is the sender's own (backed-off) value, so deep
  // backoff legitimately buys long silences before this trips.
  sim::Time limit = sender_.rto_estimator().rto() *
                    static_cast<std::int64_t>(wd_.cfg_.stall_rto_factor);
  // The stall ceiling only caps UNEXPLAINED silence: while a pending RTO
  // expiry still lies ahead, the sender has named the next thing that will
  // wake it and the RTO-relative limit stands. With no timer armed (or an
  // expiry that passed without producing activity), nothing explains the
  // quiet, so the absolute cap applies.
  if (wd_.cfg_.stall_ceiling &&
      (!sender_.rto_pending() || sender_.rto_expiry() <= now)) {
    limit = std::min(limit, *wd_.cfg_.stall_ceiling);
  }
  if (!flagged_stall_ && now - last_activity_ > limit) {
    flagged_stall_ = true;
    wd_.report(WatchdogReportId::kStall, sender_.variant_name(),
               "no activity for %.3fs (> %d x rto=%.3fs), una=%llu",
               (now - last_activity_).to_seconds(), wd_.cfg_.stall_rto_factor,
               sender_.rto_estimator().rto().to_seconds(),
               static_cast<unsigned long long>(una));
  }
}

}  // namespace rrtcp::chaos
