// Deterministic, seed-driven fault injection.
//
// A FaultInjector is a PacketHandler wrapper: it slides between a node and
// an existing Link (or any other handler) via Node::replace_route_target()
// and imposes a FaultPlan — a list of timed, independently-seeded
// FaultSpecs — on everything the node forwards through it. The wrapped
// object is never modified; composition with the link's own loss model,
// queue discipline, and reorder model falls out of the wrapping order:
// injector faults act at link INGRESS (before the queue), and delay-spiked
// packets re-check the blackhole/outage windows when they emerge so a
// packet held across the start of an outage cannot be resurrected on the
// far side of it.
//
// Everything is deterministic: each spec draws from its own named RNG
// stream derived from (plan seed, spec index), so two runs with the same
// seed see byte-identical fault behavior and adding a spec never perturbs
// the draws of the others. That is what makes a failing chaos-soak
// schedule replayable from nothing but its printed seed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rrtcp::chaos {

enum class FaultKind : std::uint8_t {
  kOutage,        // link down: drop every arrival inside the window (flaps
                  // when period > 0); packets already past the injector
                  // (in the wrapped link) are unaffected — carrier loss,
                  // not memory loss
  kBlackhole,     // like kOutage, but also swallows injector-held
                  // (delay-spiked) packets that would emerge inside the
                  // window — nothing crosses, full stop
  kAckLoss,       // drop ACK packets with `probability` inside the window
  kAckDuplicate,  // forward ACK packets twice with `probability`
  kBurstLoss,     // Gilbert-Elliott two-state loss inside the window
  kDelaySpike,    // hold selected packets an extra `extra_delay`
  kCount,
};

const char* to_string(FaultKind k);
// Inverse of to_string; false (out untouched) for an unknown name.
bool fault_kind_from_string(std::string_view name, FaultKind* out);

// Which dumbbell direction a spec is meant for; the soak harness splits a
// plan into a forward (data) and a reverse (ACK) injector on this field.
// An injector itself applies every spec it is given regardless of path —
// the field is routing metadata, not a packet filter.
enum class FaultPath : std::uint8_t { kData, kAck };

const char* to_string(FaultPath p);
bool fault_path_from_string(std::string_view name, FaultPath* out);

struct FaultSpec {
  FaultKind kind = FaultKind::kOutage;
  FaultPath path = FaultPath::kData;
  sim::Time start = sim::Time::zero();
  sim::Time duration = sim::Time::zero();
  // Zero: one-shot window [start, start+duration). Positive (> duration):
  // the window repeats every `period` forever — a flapping link.
  sim::Time period = sim::Time::zero();
  // kAckLoss / kAckDuplicate / kDelaySpike per-packet probability.
  double probability = 1.0;
  // kDelaySpike hold time.
  sim::Time extra_delay = sim::Time::zero();
  // kBurstLoss Gilbert-Elliott chain: P(good->bad), P(bad->good), and the
  // drop probability while in the bad state.
  double p_enter_bad = 0.0;
  double p_exit_bad = 1.0;
  double loss_in_bad = 1.0;
  // kBurstLoss: restrict the chain to data packets (an injector on a pure
  // ACK path can leave this false).
  bool data_only = false;

  // True while `now` falls inside an active window.
  bool active_at(sim::Time now) const;
  std::string describe() const;

  // Lossless one-line text codec for replay files (src/fuzz). Every field
  // is emitted: times as exact picosecond integers, probabilities with
  // enough digits to round-trip a double bit-for-bit. from_text accepts
  // exactly what to_text emits (order-insensitive `k=v` tokens) and
  // returns false on any unknown key or malformed value.
  std::string to_text() const;
  static bool from_text(std::string_view line, FaultSpec* out);
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
  // Specs whose path field matches (what the soak harness hands each
  // direction's injector).
  FaultPlan subset(FaultPath path) const;
  // Deterministic one-line summary, e.g.
  // "outage@2.000s+1.500s[data]; ackloss@5.000s+3.000s p=0.12[ack]".
  std::string describe() const;
};

// Bounds for seeded random plan generation (the soak's schedule space).
// Chosen so a schedule is hostile but survivable: windows land while flows
// are active, flapping links have a duty cycle <= 1/2, and probabilities
// stay below certainty for the probabilistic kinds.
struct PlanBounds {
  int min_faults = 1;
  int max_faults = 3;
  sim::Time earliest = sim::Time::seconds(1.0);
  sim::Time latest = sim::Time::seconds(30.0);
  sim::Time min_duration = sim::Time::milliseconds(200);
  sim::Time max_duration = sim::Time::seconds(5.0);
  sim::Time min_delay_spike = sim::Time::milliseconds(50);
  sim::Time max_delay_spike = sim::Time::milliseconds(400);
};

// Draws a schedule from the bounds. Same (seed, bounds) -> same plan,
// independent of everything else in the process (own named RNG stream).
FaultPlan make_random_plan(std::uint64_t seed, const PlanBounds& bounds = {});

class FaultInjector final : public net::PacketHandler {
 public:
  // Wraps `inner`. `seed` drives every probabilistic spec; `name` labels
  // RNG streams (and must be stable across runs for determinism).
  // The injector must outlive the simulation, like the Link it wraps:
  // delay-spiked packets hold a reference to it until they emerge.
  FaultInjector(sim::Simulator& sim, net::PacketHandler& inner, FaultPlan plan,
                std::uint64_t seed, std::string name = "fault");

  RRTCP_HOT void send(net::Packet p) override;

  const FaultPlan& plan() const { return plan_; }

  // Statistics.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  struct ArmedSpec {
    FaultSpec spec;
    sim::Rng rng;
    bool bad = false;  // Gilbert-Elliott chain state
  };

  // Deliver (or swallow) a packet that finished its spike hold.
  RRTCP_HOT void emerge(net::Packet p, bool duplicate);
  RRTCP_HOT void forward(net::Packet p, bool duplicate);
  bool blackholed(sim::Time now) const;

  sim::Simulator& sim_;
  net::PacketHandler& inner_;
  FaultPlan plan_;
  std::string name_;
  std::vector<ArmedSpec> specs_;

  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t forwarded_ = 0;
};

// Interpose `injector` in front of `wrapped` on every route of `node`
// (including the default route). Returns the number of routes rewritten;
// asserts that at least one was.
int interpose(net::Node& node, net::PacketHandler& wrapped,
              FaultInjector& injector);

}  // namespace rrtcp::chaos
