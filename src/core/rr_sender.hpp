// Robust Recovery (RR) — the congestion-recovery algorithm of
// Wang & Shin, "Robust TCP Congestion Recovery", ICDCS 2001 (Section 2).
//
// RR replaces Reno/New-Reno fast recovery on the SENDER side only: it
// needs neither SACK options nor any receiver change. Its state machine
// (paper Figures 1-2):
//
//   entrance ─→ RETREAT ─→ (first partial ACK) ─→ PROBE ─→ exit
//                  │                                │ ↺ further loss
//                  └──────── (new ACK > recover) ───┴─→ exit
//
// * Entrance (3rd dup ACK): recover := maxseq; ssthresh := window/2;
//   retransmit the first hole. cwnd is left UNTOUCHED — during recovery
//   transmission is controlled by `actnum`, the paper's accurate count of
//   packets actually in flight (cwnd over-counts: it includes dormant
//   packets queued at the receiver and dropped packets).
//
// * Retreat (first RTT only): exponential back-off — one new packet per
//   TWO dup ACKs, exactly one RTT's worth, because a burst of losses in
//   one window is ONE congestion signal. ndup counts this RTT's dup ACKs.
//
// * Probe (per RTT, delimited by partial ACKs): each partial ACK triggers
//   an immediate retransmission of the next hole; each dup ACK triggers
//   ONE new packet (self-clocking, right-edge style). At every partial
//   ACK, `ndup` (new packets of the previous RTT that arrived) is compared
//   with `actnum` (new packets sent in the previous RTT):
//     ndup == actnum  → no further loss: actnum += 1 and send one extra
//                       packet — the linear probe toward the new
//                       equilibrium (congestion-avoidance-like growth);
//     ndup <  actnum  → further data loss, detected WITHOUT another fast
//                       retransmit or timeout: actnum := ndup (linear
//                       back-off) and the exit point advances to the
//                       current maxseq so the new holes are recovered too.
//
// * Exit (new ACK beyond recover): control returns to cwnd with
//   cwnd := actnum × MSS — an accurate in-flight measure, so the exit ACK
//   releases exactly one new packet and the "big ACK" burst of
//   New-Reno/SACK cannot happen. The connection continues in congestion
//   avoidance.
//
// Retransmission losses are handled by the usual coarse timeout (base
// class), as in the paper.
#pragma once

#include "tcp/sender_base.hpp"

namespace rrtcp::core {

// Not `final`: the audit layer's mutation self-checks (tests/audit) derive
// test-only BrokenSender variants that re-introduce classic accounting bugs
// and assert the InvariantAuditor catches each one.
class RrSender : public tcp::TcpSenderBase {
 public:
  using TcpSenderBase::TcpSenderBase;

  const char* variant_name() const override { return "rr"; }

  // RR-specific introspection (paper Table 2 state variables).
  bool in_recovery() const { return state_ != State::kNone; }
  bool in_retreat() const { return state_ == State::kRetreat; }
  bool in_probe() const { return state_ == State::kProbe; }
  long actnum() const { return actnum_; }
  long ndup() const { return ndup_; }
  // New packets sent during the retreat RTT — the measured in-flight count
  // a single-loss (retreat) exit hands to cwnd.
  long sent_in_retreat() const { return sent_in_retreat_; }
  std::uint64_t recover_point() const { return recover_; }
  // Number of further-loss events detected via the ndup/actnum comparison
  // (i.e. without fast retransmit or timeout).
  std::uint64_t further_loss_events() const { return further_loss_events_; }
  // Number of rescue retransmissions (lost retransmissions repaired
  // without a timeout; see implementation note 3).
  std::uint64_t rescue_retransmissions() const { return rescue_rtx_; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override;
  void handle_dup_ack(const net::TcpHeader& h) override;
  void handle_timeout_cleanup() override;

 private:
  enum class State { kNone, kRetreat, kProbe };

  void enter_recovery();
  void on_partial_ack_in_retreat();
  void on_partial_ack_in_probe();
  void on_further_loss();
  // Retransmit the segment a probe-RTT boundary points at, subject to the
  // territory rules (see the implementation notes).
  void boundary_retransmit();
  // Re-retransmit an unmoving hole once per RTT when the dup-ACK count
  // says its retransmission was lost (implementation note 3).
  void maybe_rescue(long expected_dupacks);
  void exit_recovery();

  State state_ = State::kNone;
  std::uint64_t recover_ = 0;   // exit threshold (may advance on further loss)
  std::uint64_t entry_recover_ = 0;  // exit threshold as fixed at entry
  bool recover_valid_ = false;  // guards re-entry for the same window
  long actnum_ = 0;             // new packets sent in the previous RTT
  long ndup_ = 0;               // dup ACKs seen in the current RTT
  long sent_in_retreat_ = 0;    // new packets sent during the retreat RTT
  // Retransmissions owed for losses detected via the ndup/actnum deficit;
  // bounds spurious retransmissions once recover_ has been extended.
  long further_rtx_budget_ = 0;
  // Rescue-retransmission state: at most one rescue per recovery RTT.
  bool rescued_this_rtt_ = false;
  std::uint64_t rescue_rtx_ = 0;
  std::uint64_t further_loss_events_ = 0;
};

}  // namespace rrtcp::core
