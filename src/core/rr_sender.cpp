#include "core/rr_sender.hpp"

#include <algorithm>

#include "sim/assert.hpp"
#include "sim/log.hpp"

// Implementation notes — hardening beyond the paper's pseudocode
// ---------------------------------------------------------------
// Three measures below are not spelled out in the paper but are required
// for the algorithm to behave as its text intends (each is documented in
// DESIGN.md as a clarifying deviation):
//
// 1. ORDERING. At a clean probe-RTT boundary the sender emits both the
//    hole retransmission and the extra (+1) probe packet. The probe packet
//    must be serialized FIRST: its duplicate ACK then arrives just before
//    the next boundary ACK and is counted in the closing RTT. The
//    opposite order makes ndup systematically undercount by one, which
//    the ndup/actnum comparison would misread as a loss every RTT.
//
// 2. TERRITORY RULES for boundary retransmissions. A partial ACK below
//    the ORIGINAL exit threshold always points at a genuine hole (that
//    data predates recovery by at least one RTT). Once recover_ has been
//    extended, however, ACKs sweeping through recovery-sent, hole-free
//    data also look like partial ACKs; retransmitting on each would
//    resend the entire in-flight window. The deficit actnum - ndup is the
//    paper's own count of further losses ("the difference ... indicates
//    the number of further data losses"), so exactly that many extended-
//    territory retransmissions are budgeted.
//
// 3. RESCUE RETRANSMISSION. The paper accepts a coarse timeout whenever a
//    retransmission is lost. But the self-clock itself says when that has
//    happened: the ACK of a boundary retransmission should return after
//    about one RTT, i.e. after roughly `actnum` duplicate ACKs (the
//    previous RTT's deliveries). If snd_una has not moved after
//    actnum + dupack_threshold dup ACKs, the retransmission is almost
//    certainly gone — retransmit it once more (cf. RFC 6675's rescue
//    rule). This also repairs holes the budget of note 2 undercounted.
//    Controlled by TcpConfig::rr_rescue_rtx; the ablation bench measures
//    its effect.

namespace rrtcp::core {

using tcp::TcpPhase;

void RrSender::handle_dup_ack(const net::TcpHeader& h) {
  switch (state_) {
    case State::kNone:
      if (dupacks() == cfg_.dupack_threshold &&
          !(recover_valid_ && h.ack < recover_)) {
        enter_recovery();
      }
      return;

    case State::kRetreat:
      // Exponential back-off: one new packet per two dup ACKs.
      ++ndup_;
      if (ndup_ % 2 == 0 && send_one_new_segment()) ++sent_in_retreat_;
      // Rescue (note 3): the entry retransmission should be ACKed after
      // about one pre-loss window's worth of dup ACKs.
      maybe_rescue(static_cast<long>(cwnd_bytes() / cfg_.mss));
      return;

    case State::kProbe:
      // Self-clocking: each dup ACK means one packet left the path; send
      // one new packet beyond maxseq in its place.
      ++ndup_;
      // Rescue (note 3): the boundary retransmission should be ACKed
      // after about actnum dup ACKs (one self-clocked RTT).
      maybe_rescue(actnum_);
      send_one_new_segment();
      return;
  }
}

void RrSender::maybe_rescue(long expected_dupacks) {
  if (!cfg_.rr_rescue_rtx || rescued_this_rtt_) return;
  if (dupacks() < expected_dupacks + cfg_.dupack_threshold) return;
  if (snd_una() >= max_sent()) return;
  rescued_this_rtt_ = true;
  ++rescue_rtx_;
  retransmit(snd_una());
}

void RrSender::handle_new_ack(const net::TcpHeader& h, std::uint64_t) {
  switch (state_) {
    case State::kNone:
      open_cwnd();
      send_new_data();
      return;

    case State::kRetreat:
      if (h.ack >= recover_) {
        // Only a single packet was lost in the window; recovery is done
        // after one RTT ("snd.una advances to, or beyond, the threshold").
        exit_recovery();
      } else {
        on_partial_ack_in_retreat();
      }
      return;

    case State::kProbe:
      // The further-loss test comes FIRST: an ACK that reaches the exit
      // threshold but with ndup < actnum means some of the new packets
      // sent during recovery were themselves lost ("a new partial ACK
      // beyond the original exit") — the exit must extend, not trigger.
      // Exception: if the ACK covers everything ever sent, the deficit was
      // ACK loss, not data loss — there is nothing left to recover.
      if (ndup_ < actnum_ && h.ack < max_sent()) {
        on_further_loss();
      } else if (h.ack >= recover_) {
        exit_recovery();
      } else {
        on_partial_ack_in_probe();
      }
      return;
  }
}

void RrSender::enter_recovery() {
  count_fast_retransmit();
  recover_ = max_sent();   // paper: recover = maxseq
  entry_recover_ = recover_;
  recover_valid_ = true;
  halve_ssthresh();        // paper: ssthresh = win * 1/2
  retransmit(snd_una());   // first lost packet
  // cwnd deliberately unchanged: it is not the controller during recovery.
  state_ = State::kRetreat;
  ndup_ = 0;
  sent_in_retreat_ = 0;
  actnum_ = 0;  // stays 0 throughout the retreat sub-phase
  further_rtx_budget_ = 0;
  rescued_this_rtt_ = false;
  set_phase(TcpPhase::kRetreat);
}

void RrSender::on_partial_ack_in_retreat() {
  // End of the first RTT: the retreat sub-phase ends and the role of
  // congestion control transfers from cwnd to actnum. actnum is the number
  // of new packets sent during the retreat (== ndup/2 unless app-limited).
  actnum_ = sent_in_retreat_;
  ndup_ = 0;
  rescued_this_rtt_ = false;
  // The partial ACK names the next hole: retransmit immediately. (Always
  // original territory here — the ACK is below the entry threshold.)
  retransmit(snd_una());
  state_ = State::kProbe;
  set_phase(TcpPhase::kProbe);
  RRTCP_ENV_DEBUG(env_, variant_name(),
              "retreat -> probe, actnum=%ld recover=%llu", actnum_,
              static_cast<unsigned long long>(recover_));
}

void RrSender::on_partial_ack_in_probe() {
  // A partial ACK with ndup == actnum marks a clean RTT boundary in the
  // probe sub-phase (paper Figure 3): every new packet sent in the
  // previous RTT arrived. Probe the new equilibrium (+1 packet per RTT,
  // like congestion avoidance) and recover the hole the ACK names. The
  // probe packet goes first — see ordering note 1 above.
  ++actnum_;
  if (cfg_.rr_probe_packet_first) {
    send_one_new_segment();
    boundary_retransmit();
  } else {
    boundary_retransmit();
    send_one_new_segment();
  }
  ndup_ = 0;
  rescued_this_rtt_ = false;
}

void RrSender::on_further_loss() {
  // ndup < actnum: fewer of the previous RTT's new packets arrived than
  // were sent — further data loss, detected WITHOUT another fast
  // retransmit or timeout. Shrink linearly to the measured in-flight
  // count and extend the exit so the new holes are recovered inside this
  // same recovery episode (recover := snd.nxt at detection time).
  ++further_loss_events_;
  further_rtx_budget_ += actnum_ - ndup_;
  RRTCP_ENV_DEBUG(env_, variant_name(),
              "further loss: ndup=%ld < actnum=%ld, recover %llu -> %llu",
              ndup_, actnum_, static_cast<unsigned long long>(recover_),
              static_cast<unsigned long long>(max_sent()));
  actnum_ = ndup_;  // may legitimately reach 0: the next clean partial ACK
                    // bumps it back to 1 via the probe branch
  recover_ = max_sent();
  boundary_retransmit();
  ndup_ = 0;
  rescued_this_rtt_ = false;
}

void RrSender::boundary_retransmit() {
  if (snd_una() < entry_recover_) {
    // Original territory: guaranteed hole (note 2).
    retransmit(snd_una());
    return;
  }
  if (!cfg_.rr_budget_rtx) {
    retransmit(snd_una());  // paper-literal: every boundary retransmits
    return;
  }
  if (further_rtx_budget_ > 0) {
    --further_rtx_budget_;
    retransmit(snd_una());
  }
  // Otherwise: most likely an ACK sweeping hole-free recovery data; if a
  // real hole was missed, the in-probe dup-ACK backstop repairs it.
}

void RrSender::exit_recovery() {
  // In the single-loss (retreat) exit, actnum_ is still 0; the accurate
  // in-flight count is what the retreat sub-phase sent.
  const long flight_pkts =
      std::max<long>(1, state_ == State::kRetreat ? sent_in_retreat_ : actnum_);
  // Hand control back to cwnd with an accurate in-flight measure (paper
  // Figure 2 exit: cwnd = actnum * MSS): the ACK that takes us out
  // releases exactly one new packet — no big-ACK burst. ssthresh keeps
  // the value set at entry (win/2), so if the probe ended below it the
  // sender climbs back with a short slow start before congestion
  // avoidance — vanilla TCP behavior, and burst-free because cwnd starts
  // from the true in-flight count.
  set_cwnd(static_cast<std::uint64_t>(flight_pkts) * cfg_.mss);
  state_ = State::kNone;
  actnum_ = 0;
  ndup_ = 0;
  sent_in_retreat_ = 0;
  further_rtx_budget_ = 0;
  update_open_phase();
  RRTCP_ENV_DEBUG(env_, variant_name(), "exit recovery, cwnd=%.1f pkts",
              cwnd_packets());
  send_new_data();
}

void RrSender::handle_timeout_cleanup() {
  // Retransmission losses fall back to the usual coarse timeout; all RR
  // state is abandoned and slow start takes over (base class).
  state_ = State::kNone;
  actnum_ = 0;
  ndup_ = 0;
  sent_in_retreat_ = 0;
  further_rtx_budget_ = 0;
  recover_ = max_sent();
  recover_valid_ = true;
}

}  // namespace rrtcp::core
